/**
 * @file
 * Instruction selection: vector IR -> simulated DSP machine code
 * (paper §4, "Instruction selection"; §5.1 for the shuffle/select
 * lowering).
 *
 * Values map 1:1 onto virtual machine registers, except that accumulator
 * patterns reuse registers in place when the operand is at its last use —
 * VecMAC lowers to a single `vmac` rather than copy+mac, matching how the
 * vendor toolchain allocates PDX_MAC accumulators.
 *
 * Literal lane vectors are materialized through a constant pool appended
 * to the kernel's memory image.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "machine/program.h"
#include "machine/schedule.h"
#include "machine/sim.h"
#include "machine/target.h"
#include "scalar/ast.h"
#include "scalar/interp.h"
#include "vir/vir.h"

namespace diospyros::vir {

/**
 * Memory placement for a compiled kernel: every array padded to a
 * multiple of the vector width (so aligned block loads/stores stay in
 * bounds), plus the constant pool.
 */
class CompiledLayout {
  public:
    struct Entry {
        std::string name;
        int base = 0;
        std::int64_t real_len = 0;
        std::int64_t padded_len = 0;
        scalar::ArrayRole role = scalar::ArrayRole::kInput;
    };

    /** Pads and places all kernel arrays. */
    static CompiledLayout make(const scalar::Kernel& kernel, int width);

    int base_of(const std::string& name) const;
    const std::vector<Entry>& entries() const { return entries_; }

    /** Appends `values` to the constant pool; returns its address. */
    int add_pool_constant(const std::vector<float>& values);

    /** The constant pool contents (serialized by the compile cache). */
    const std::vector<float>& pool() const { return pool_; }

    /**
     * Replaces the constant pool wholesale — used when reconstructing a
     * compiled kernel from the on-disk cache, where the machine program
     * already references pool addresses laid out by the original
     * emission.
     */
    void set_pool(std::vector<float> pool) { pool_ = std::move(pool); }

    /**
     * Builds a simulator Memory: arrays (inputs initialized, zero-padded)
     * followed by the constant pool.
     */
    Memory make_memory(const scalar::BufferMap& inputs) const;

    /** Reads the real (unpadded) output arrays back. */
    scalar::BufferMap read_outputs(const Memory& memory) const;

    /**
     * Total words of the flat memory image (padded arrays followed by
     * the constant pool) — what make_memory() produces, exported so the
     * native backend can size a raw buffer without building a Memory.
     */
    std::size_t
    memory_words() const
    {
        std::size_t words = 0;
        for (const Entry& e : entries_) {
            words = std::max(words, static_cast<std::size_t>(e.base) +
                                        static_cast<std::size_t>(
                                            e.padded_len));
        }
        return words + pool_.size();
    }

    /** Word offset of the constant pool: the end of the padded arrays. */
    std::size_t
    pool_base_words() const
    {
        return memory_words() - pool_.size();
    }

  private:
    std::vector<Entry> entries_;
    int pool_base_ = 0;
    std::vector<float> pool_;
};

/**
 * The intermediate artifacts of one emission, captured for the machine
 * verifier (analysis/verify_machine.h): the program as selected, before
 * the list scheduler reordered it, and the scheduler's claimed
 * permutation. Only populated when the caller asks for it — the release
 * hot path pays nothing.
 */
struct EmitTrace {
    Program unscheduled;
    ScheduleStats schedule;
};

/**
 * Emits machine code for a vector-IR program against a concrete target
 * (scalar-MAC availability and vector width come from `target`). The
 * layout's constant pool is extended as literal vectors are placed, so
 * emit before calling make_memory(). When `trace` is non-null it
 * receives the pre-schedule program and the scheduler's permutation.
 */
Program emit_machine(const VProgram& program, CompiledLayout& layout,
                     const TargetSpec& target, EmitTrace* trace = nullptr);

}  // namespace diospyros::vir
