/**
 * @file
 * Local value numbering + dead-code elimination over the vector IR
 * (paper §4, "IR-level optimization").
 *
 * Full loop unrolling makes extracted programs massively redundant; the
 * paper reports LVN shrinking the quaternion-product kernel from >100k
 * lines of C++ to under 500. Here LVN also provides the *global* CSE that
 * the §5.6 ablation credits for the scalar-only Diospyros win over the
 * fixed-size baseline (whose CSE window is bounded; see scalar/lower.h).
 */
#pragma once

#include "vir/vir.h"

namespace diospyros::vir {

/** What the pass removed. */
struct LvnStats {
    std::size_t input_instrs = 0;
    std::size_t value_numbered = 0;  ///< replaced by an earlier instruction
    std::size_t dead_removed = 0;    ///< unused value producers removed
    std::size_t output_instrs = 0;
};

/**
 * Rewrites `program` in place: numbering removes redundant value
 * producers; a backward liveness pass then deletes unused ones. Stores
 * are never removed. Idempotent.
 */
LvnStats run_lvn(VProgram& program);

}  // namespace diospyros::vir
