#include "vir/emit.h"

#include <map>
#include <unordered_map>

#include "machine/schedule.h"
#include "support/error.h"
#include "support/faults.h"

namespace diospyros::vir {

CompiledLayout
CompiledLayout::make(const scalar::Kernel& kernel, int width)
{
    CompiledLayout layout;
    int base = 0;
    for (const scalar::ArrayDecl& decl : kernel.arrays) {
        const std::int64_t n = scalar::array_length(kernel, decl);
        const std::int64_t padded =
            (n + width - 1) / width * width;
        layout.entries_.push_back(Entry{decl.name.str(), base, n, padded,
                                        decl.role});
        base += static_cast<int>(padded);
    }
    layout.pool_base_ = base;
    return layout;
}

int
CompiledLayout::base_of(const std::string& name) const
{
    for (const Entry& e : entries_) {
        if (e.name == name) {
            return e.base;
        }
    }
    throw UserError("compiled layout has no array named " + name);
}

int
CompiledLayout::add_pool_constant(const std::vector<float>& values)
{
    const int addr = pool_base_ + static_cast<int>(pool_.size());
    pool_.insert(pool_.end(), values.begin(), values.end());
    return addr;
}

Memory
CompiledLayout::make_memory(const scalar::BufferMap& inputs) const
{
    Memory mem;
    for (const Entry& e : entries_) {
        if (e.role == scalar::ArrayRole::kInput) {
            auto it = inputs.find(e.name);
            DIOS_CHECK(it != inputs.end(), "missing input array " + e.name);
            DIOS_CHECK(it->second.size() ==
                           static_cast<std::size_t>(e.real_len),
                       "input " + e.name + " has wrong size");
            std::vector<float> padded = it->second;
            padded.resize(static_cast<std::size_t>(e.padded_len), 0.0f);
            mem.alloc(e.name, padded);
        } else {
            mem.alloc(e.name, static_cast<std::size_t>(e.padded_len));
        }
    }
    if (!pool_.empty()) {
        mem.alloc("__pool", pool_);
    }
    return mem;
}

scalar::BufferMap
CompiledLayout::read_outputs(const Memory& memory) const
{
    scalar::BufferMap out;
    for (const Entry& e : entries_) {
        if (e.role == scalar::ArrayRole::kOutput) {
            std::vector<float> padded = memory.read(e.name);
            padded.resize(static_cast<std::size_t>(e.real_len));
            out.emplace(e.name, std::move(padded));
        }
    }
    return out;
}

namespace {

Opcode
scalar_binop(Op op)
{
    switch (op) {
      case Op::kAdd:
        return Opcode::kFAdd;
      case Op::kSub:
        return Opcode::kFSub;
      case Op::kMul:
        return Opcode::kFMul;
      case Op::kDiv:
        return Opcode::kFDiv;
      default:
        throw InternalError("bad scalar binop");
    }
}

Opcode
scalar_unop(Op op)
{
    switch (op) {
      case Op::kNeg:
        return Opcode::kFNeg;
      case Op::kSqrt:
        return Opcode::kFSqrt;
      case Op::kSgn:
        return Opcode::kFSgn;
      case Op::kRecip:
        return Opcode::kFRecip;
      default:
        throw InternalError("bad scalar unop");
    }
}

Opcode
vector_binop(Op op)
{
    switch (op) {
      case Op::kAdd:
        return Opcode::kVAdd;
      case Op::kSub:
        return Opcode::kVSub;
      case Op::kMul:
        return Opcode::kVMul;
      case Op::kDiv:
        return Opcode::kVDiv;
      default:
        throw InternalError("bad vector binop");
    }
}

Opcode
vector_unop(Op op)
{
    switch (op) {
      case Op::kNeg:
        return Opcode::kVNeg;
      case Op::kSqrt:
        return Opcode::kVSqrt;
      case Op::kSgn:
        return Opcode::kVSgn;
      case Op::kRecip:
        return Opcode::kVRecip;
      default:
        throw InternalError("bad vector unop");
    }
}

class Emitter {
  public:
    Emitter(const VProgram& vp, CompiledLayout& layout,
            const TargetSpec& target)
        : vp_(vp), layout_(layout), target_(target),
          width_(vp.vector_width)
    {
        compute_last_uses();
    }

    Program
    run()
    {
        for (std::size_t idx = 0; idx < vp_.instrs.size(); ++idx) {
            emit(vp_.instrs[idx], idx);
        }
        pb_.halt();
        return pb_.finish();
    }

  private:
    void
    compute_last_uses()
    {
        last_use_s_.assign(
            static_cast<std::size_t>(vp_.num_scalar_values), -1);
        last_use_v_.assign(
            static_cast<std::size_t>(vp_.num_vector_values), -1);
        for (std::size_t idx = 0; idx < vp_.instrs.size(); ++idx) {
            const VInstr& i = vp_.instrs[idx];
            auto use = [&](int id, bool vec) {
                if (id < 0) {
                    return;
                }
                auto& lu = vec ? last_use_v_ : last_use_s_;
                lu[static_cast<std::size_t>(id)] = static_cast<int>(idx);
            };
            switch (i.op) {
              case VOp::kSBinary:
                use(i.a, false);
                use(i.b, false);
                break;
              case VOp::kSMac:
                use(i.a, false);
                use(i.b, false);
                use(i.c, false);
                break;
              case VOp::kSUnary:
              case VOp::kSStore:
                use(i.a, false);
                break;
              case VOp::kSCall:
                for (const int arg : i.args) {
                    use(arg, false);
                }
                break;
              case VOp::kSExtract:
              case VOp::kShuffle:
              case VOp::kVUnary:
              case VOp::kVStore:
                use(i.a, true);
                break;
              case VOp::kSelect:
              case VOp::kVBinary:
                use(i.a, true);
                use(i.b, true);
                break;
              case VOp::kVMac:
                use(i.a, true);
                use(i.b, true);
                use(i.c, true);
                break;
              case VOp::kInsert:
                use(i.a, true);
                use(i.b, false);
                break;
              case VOp::kSConst:
              case VOp::kSLoad:
              case VOp::kVLoadA:
              case VOp::kVConst:
                break;
            }
        }
    }

    int
    sreg(int value)
    {
        auto it = s_regs_.find(value);
        if (it == s_regs_.end()) {
            it = s_regs_.emplace(value, pb_.fresh_float()).first;
        }
        return it->second;
    }

    int
    vreg(int value)
    {
        auto it = v_regs_.find(value);
        if (it == v_regs_.end()) {
            it = v_regs_.emplace(value, pb_.fresh_vec()).first;
        }
        return it->second;
    }

    int
    addr(Symbol array, std::int64_t offset)
    {
        return layout_.base_of(array.str()) + static_cast<int>(offset);
    }

    /**
     * Returns the machine register for an accumulator-style destination:
     * reuses the operand's register in place when this is its last use,
     * otherwise copies (shuffle for vectors, fmov for scalars).
     */
    int
    acc_vreg(int acc_value, std::size_t idx, int dst_value)
    {
        const int src = vreg(acc_value);
        if (last_use_v_[static_cast<std::size_t>(acc_value)] ==
            static_cast<int>(idx)) {
            v_regs_[dst_value] = src;
            return src;
        }
        const int dst = vreg(dst_value);
        std::vector<int> identity(static_cast<std::size_t>(width_));
        for (int l = 0; l < width_; ++l) {
            identity[static_cast<std::size_t>(l)] = l;
        }
        pb_.shuf(dst, src, identity);
        return dst;
    }

    int
    acc_sreg(int acc_value, std::size_t idx, int dst_value)
    {
        const int src = sreg(acc_value);
        if (last_use_s_[static_cast<std::size_t>(acc_value)] ==
            static_cast<int>(idx)) {
            s_regs_[dst_value] = src;
            return src;
        }
        const int dst = sreg(dst_value);
        pb_.fmov(dst, src);
        return dst;
    }

    void
    emit(const VInstr& i, std::size_t idx)
    {
        switch (i.op) {
          case VOp::kSConst:
            pb_.fmov_i(sreg(i.dst), static_cast<float>(i.values[0]));
            return;
          case VOp::kSLoad:
            pb_.fload(sreg(i.dst), -1, addr(i.array, i.offset));
            return;
          case VOp::kSBinary:
            pb_.fbinop(scalar_binop(i.alu), sreg(i.dst), sreg(i.a),
                       sreg(i.b));
            return;
          case VOp::kSUnary:
            pb_.funop(scalar_unop(i.alu), sreg(i.dst), sreg(i.a));
            return;
          case VOp::kSMac: {
            if (target_.has_scalar_mac) {
                const int dst = acc_sreg(i.a, idx, i.dst);
                pb_.fmac(dst, sreg(i.b), sreg(i.c));
                return;
            }
            // No scalar fused MAC: multiply into a temporary, then add.
            const int tmp = pb_.fresh_float();
            pb_.fbinop(Opcode::kFMul, tmp, sreg(i.b), sreg(i.c));
            pb_.fbinop(Opcode::kFAdd, sreg(i.dst), sreg(i.a), tmp);
            return;
          }
          case VOp::kSCall:
            throw UserError(
                "user-defined functions cannot be executed on the "
                "simulated DSP; provide a rewrite to primitive ops or run "
                "via the reference evaluator");
          case VOp::kSExtract:
            pb_.vextract(sreg(i.dst), vreg(i.a), i.lane);
            return;
          case VOp::kVLoadA:
            pb_.vload(vreg(i.dst), -1, addr(i.array, i.offset));
            return;
          case VOp::kVConst: {
            std::vector<float> lanes(i.values.begin(), i.values.end());
            lanes.resize(static_cast<std::size_t>(width_), 0.0f);
            // Splat is cheaper when all lanes agree; otherwise pool-load.
            bool uniform = true;
            for (const float v : lanes) {
                uniform &= v == lanes[0];
            }
            if (uniform) {
                pb_.vsplat(vreg(i.dst), lanes[0]);
            } else {
                const int pool_addr = pool_slot(lanes);
                pb_.vload(vreg(i.dst), -1, pool_addr);
            }
            return;
          }
          case VOp::kShuffle:
            pb_.shuf(vreg(i.dst), vreg(i.a), i.lanes);
            return;
          case VOp::kSelect:
            pb_.sel(vreg(i.dst), vreg(i.a), vreg(i.b), i.lanes);
            return;
          case VOp::kInsert: {
            const int dst = acc_vreg(i.a, idx, i.dst);
            pb_.vinsert(dst, i.lane, sreg(i.b));
            return;
          }
          case VOp::kVBinary:
            pb_.vbinop(vector_binop(i.alu), vreg(i.dst), vreg(i.a),
                       vreg(i.b));
            return;
          case VOp::kVUnary:
            pb_.vunop(vector_unop(i.alu), vreg(i.dst), vreg(i.a));
            return;
          case VOp::kVMac: {
            const int dst = acc_vreg(i.a, idx, i.dst);
            pb_.vmac(dst, vreg(i.b), vreg(i.c));
            return;
          }
          case VOp::kVStore:
            pb_.vstore(-1, addr(i.array, i.offset), vreg(i.a));
            return;
          case VOp::kSStore:
            pb_.fstore(-1, addr(i.array, i.offset), sreg(i.a));
            return;
        }
    }

    int
    pool_slot(const std::vector<float>& lanes)
    {
        // Deduplicate identical literal vectors in the pool.
        auto it = pool_memo_.find(lanes);
        if (it != pool_memo_.end()) {
            return it->second;
        }
        const int addr = layout_.add_pool_constant(lanes);
        pool_memo_.emplace(lanes, addr);
        return addr;
    }

    const VProgram& vp_;
    CompiledLayout& layout_;
    const TargetSpec& target_;
    int width_;
    ProgramBuilder pb_;
    std::unordered_map<int, int> s_regs_;
    std::unordered_map<int, int> v_regs_;
    std::vector<int> last_use_s_;
    std::vector<int> last_use_v_;
    std::map<std::vector<float>, int> pool_memo_;
};

}  // namespace

Program
emit_machine(const VProgram& program, CompiledLayout& layout,
             const TargetSpec& target, EmitTrace* trace)
{
    DIOS_FAULT_POINT("emit.machine");
    Emitter emitter(program, layout, target);
    // Compiled kernels are straight-line: list-schedule to hide operand
    // latencies, as the vendor toolchain would (paper §4 delegates this
    // to xt-xcc).
    Program raw = emitter.run();
    if (trace == nullptr) {
        return schedule_program(raw, target);
    }
    Program scheduled = schedule_program(raw, target, &trace->schedule);
    trace->unscheduled = std::move(raw);
    return scheduled;
}

}  // namespace diospyros::vir
