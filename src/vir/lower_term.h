/**
 * @file
 * Lowering extracted vector-DSL programs to the backend vector IR
 * (paper §4).
 *
 * The key job is translating `Vec` terms — whose lanes may name arbitrary
 * memory locations, constants, or leftover scalar expressions — into
 * concrete data movement:
 *   - a contiguous aligned run of one array becomes a single vector load;
 *   - other single/multi-array gathers load the touched aligned blocks and
 *     combine them with one shuffle or a chain of two-register selects
 *     (nested selects, exactly how the Tensilica backend lowers >2-register
 *     gathers, §5.1);
 *   - constant lanes ride in literal vectors;
 *   - scalar-computation lanes are computed scalar-side and inserted.
 *
 * Output positions are assigned against a *padded* output layout: each
 * output array is padded to a multiple of the vector width so vector
 * stores never straddle arrays (the compiler driver pads the spec to
 * match; see compiler/driver.h).
 */
#pragma once

#include <string>
#include <vector>

#include "ir/term.h"
#include "vir/vir.h"

namespace diospyros::vir {

/** One output array in flattened, padded output space. */
struct OutputSlot {
    std::string name;
    std::int64_t real_len = 0;
    std::int64_t padded_len = 0;  ///< rounded up to the vector width
};

/**
 * Lowers an extracted program to vector IR.
 *
 * @param root     extracted term: a List (scalar or mixed) or Concat/Vec
 *                 tree whose flattened width equals the total padded
 *                 output length
 * @param width    machine vector width
 * @param outputs  output arrays in spec order
 */
VProgram lower_term(const TermRef& root, int width,
                    const std::vector<OutputSlot>& outputs,
                    bool fuse_scalar_mac = true);

}  // namespace diospyros::vir
