#include "vir/vir.h"

#include <sstream>

namespace diospyros::vir {

void
vinstr_for_each_use(const VInstr& i,
                    const std::function<void(int, bool)>& fn)
{
    // fn(value_id, is_vector)
    switch (i.op) {
      case VOp::kSBinary:
        fn(i.a, false);
        fn(i.b, false);
        break;
      case VOp::kSMac:
        fn(i.a, false);
        fn(i.b, false);
        fn(i.c, false);
        break;
      case VOp::kSUnary:
        fn(i.a, false);
        break;
      case VOp::kSCall:
        for (const int arg : i.args) {
            fn(arg, false);
        }
        break;
      case VOp::kSExtract:
        fn(i.a, true);
        break;
      case VOp::kShuffle:
      case VOp::kVUnary:
        fn(i.a, true);
        break;
      case VOp::kSelect:
      case VOp::kVBinary:
        fn(i.a, true);
        fn(i.b, true);
        break;
      case VOp::kVMac:
        fn(i.a, true);
        fn(i.b, true);
        fn(i.c, true);
        break;
      case VOp::kInsert:
        fn(i.a, true);
        fn(i.b, false);
        break;
      case VOp::kVStore:
        fn(i.a, true);
        break;
      case VOp::kSStore:
        fn(i.a, false);
        break;
      case VOp::kSConst:
      case VOp::kSLoad:
      case VOp::kVLoadA:
      case VOp::kVConst:
        break;
    }
}

bool
vop_writes_vector(VOp op)
{
    switch (op) {
      case VOp::kVLoadA:
      case VOp::kVConst:
      case VOp::kShuffle:
      case VOp::kSelect:
      case VOp::kInsert:
      case VOp::kVBinary:
      case VOp::kVUnary:
      case VOp::kVMac:
        return true;
      default:
        return false;
    }
}

std::string
to_string(const VInstr& i)
{
    std::ostringstream os;
    auto lanes = [&os, &i] {
        os << '[';
        for (std::size_t l = 0; l < i.lanes.size(); ++l) {
            os << (l ? " " : "") << i.lanes[l];
        }
        os << ']';
    };
    switch (i.op) {
      case VOp::kSConst:
        os << "s" << i.dst << " = " << i.values[0];
        break;
      case VOp::kSLoad:
        os << "s" << i.dst << " = " << i.array.str() << "[" << i.offset
           << "]";
        break;
      case VOp::kSBinary:
        os << "s" << i.dst << " = s" << i.a << ' ' << op_name(i.alu)
           << " s" << i.b;
        break;
      case VOp::kSUnary:
        os << "s" << i.dst << " = " << op_name(i.alu) << "(s" << i.a
           << ")";
        break;
      case VOp::kSMac:
        os << "s" << i.dst << " = s" << i.a << " + s" << i.b << "*s"
           << i.c;
        break;
      case VOp::kSCall: {
        os << "s" << i.dst << " = " << i.fn.str() << "(";
        for (std::size_t k = 0; k < i.args.size(); ++k) {
            os << (k ? ", " : "") << "s" << i.args[k];
        }
        os << ")";
        break;
      }
      case VOp::kSExtract:
        os << "s" << i.dst << " = v" << i.a << "[" << i.lane << "]";
        break;
      case VOp::kVLoadA:
        os << "v" << i.dst << " = vload " << i.array.str() << "["
           << i.offset << "..]";
        break;
      case VOp::kVConst: {
        os << "v" << i.dst << " = vconst {";
        for (std::size_t k = 0; k < i.values.size(); ++k) {
            os << (k ? " " : "") << i.values[k];
        }
        os << "}";
        break;
      }
      case VOp::kShuffle:
        os << "v" << i.dst << " = shuffle v" << i.a << " ";
        lanes();
        break;
      case VOp::kSelect:
        os << "v" << i.dst << " = select v" << i.a << ", v" << i.b << " ";
        lanes();
        break;
      case VOp::kInsert:
        os << "v" << i.dst << " = insert v" << i.a << "[" << i.lane
           << "] <- s" << i.b;
        break;
      case VOp::kVBinary:
        os << "v" << i.dst << " = v" << i.a << ' ' << op_name(i.alu)
           << " v" << i.b;
        break;
      case VOp::kVUnary:
        os << "v" << i.dst << " = " << op_name(i.alu) << "(v" << i.a
           << ")";
        break;
      case VOp::kVMac:
        os << "v" << i.dst << " = v" << i.a << " + v" << i.b << "*v"
           << i.c;
        break;
      case VOp::kVStore:
        os << "vstore " << i.array.str() << "[" << i.offset
           << "..] = v" << i.a;
        break;
      case VOp::kSStore:
        os << i.array.str() << "[" << i.offset << "] = s" << i.a;
        break;
    }
    return os.str();
}

std::string
VProgram::validate() const
{
    std::ostringstream err;
    auto fail = [&err](int idx, const VInstr& i,
                       const std::string& why) {
        err << "instr " << idx << " (" << vir::to_string(i)
            << "): " << why;
        return err.str();
    };
    if (vector_width < 1) {
        err << "vector_width must be >= 1, got " << vector_width;
        return err.str();
    }
    if (num_scalar_values < 0 || num_vector_values < 0) {
        err << "negative value-id range";
        return err.str();
    }
    std::vector<bool> def_s(static_cast<std::size_t>(num_scalar_values),
                            false);
    std::vector<bool> def_v(static_cast<std::size_t>(num_vector_values),
                            false);
    for (std::size_t idx = 0; idx < instrs.size(); ++idx) {
        const VInstr& i = instrs[idx];
        const bool is_store =
            i.op == VOp::kVStore || i.op == VOp::kSStore;

        // Operands must be in range and already defined (SSA).
        std::string use_err;
        vinstr_for_each_use(i, [&](int id, bool is_vec) {
            if (!use_err.empty()) {
                return;
            }
            const auto& def = is_vec ? def_v : def_s;
            const int limit =
                is_vec ? num_vector_values : num_scalar_values;
            const char* kind = is_vec ? "vector" : "scalar";
            if (id < 0 || id >= limit) {
                use_err = std::string(kind) + " operand id " +
                          std::to_string(id) + " out of range [0, " +
                          std::to_string(limit) + ")";
            } else if (!def[static_cast<std::size_t>(id)]) {
                use_err = std::string(kind) + " operand " +
                          std::to_string(id) + " used before definition";
            }
        });
        if (!use_err.empty()) {
            return fail(static_cast<int>(idx), i, use_err);
        }

        // Immediates.
        switch (i.op) {
          case VOp::kSLoad:
          case VOp::kVLoadA:
          case VOp::kVStore:
          case VOp::kSStore:
            if (!i.array.valid()) {
                return fail(static_cast<int>(idx), i,
                            "memory op without an array symbol");
            }
            if (i.offset < 0) {
                return fail(static_cast<int>(idx), i,
                            "negative memory offset");
            }
            break;
          case VOp::kShuffle:
          case VOp::kSelect: {
            if (static_cast<int>(i.lanes.size()) != vector_width) {
                return fail(static_cast<int>(idx), i,
                            "lane table size != vector width");
            }
            const int bound = i.op == VOp::kSelect ? 2 * vector_width
                                                   : vector_width;
            for (const int l : i.lanes) {
                if (l < 0 || l >= bound) {
                    return fail(static_cast<int>(idx), i,
                                "lane index " + std::to_string(l) +
                                    " out of range [0, " +
                                    std::to_string(bound) + ")");
                }
            }
            break;
          }
          case VOp::kInsert:
          case VOp::kSExtract:
            if (i.lane < 0 || i.lane >= vector_width) {
                return fail(static_cast<int>(idx), i,
                            "lane immediate " + std::to_string(i.lane) +
                                " out of range [0, " +
                                std::to_string(vector_width) + ")");
            }
            break;
          case VOp::kSConst:
            if (i.values.size() != 1) {
                return fail(static_cast<int>(idx), i,
                            "kSConst needs exactly one literal value");
            }
            break;
          case VOp::kVConst:
            if (static_cast<int>(i.values.size()) != vector_width) {
                return fail(static_cast<int>(idx), i,
                            "kVConst literal count != vector width");
            }
            break;
          default:
            break;
        }

        // Destination.
        if (is_store) {
            if (i.dst != -1) {
                return fail(static_cast<int>(idx), i,
                            "store must have dst == -1");
            }
            continue;
        }
        const bool writes_vec = vop_writes_vector(i.op);
        auto& def = writes_vec ? def_v : def_s;
        const int limit =
            writes_vec ? num_vector_values : num_scalar_values;
        if (i.dst < 0 || i.dst >= limit) {
            return fail(static_cast<int>(idx), i,
                        "dst id " + std::to_string(i.dst) +
                            " out of range [0, " + std::to_string(limit) +
                            ")");
        }
        if (def[static_cast<std::size_t>(i.dst)]) {
            return fail(static_cast<int>(idx), i,
                        "SSA violation: dst " + std::to_string(i.dst) +
                            " redefined");
        }
        def[static_cast<std::size_t>(i.dst)] = true;
    }
    return "";
}

std::string
VProgram::to_string() const
{
    std::ostringstream os;
    os << "; vector IR, width " << vector_width << ", "
       << instrs.size() << " instructions\n";
    for (const VInstr& i : instrs) {
        os << "  " << vir::to_string(i) << '\n';
    }
    return os.str();
}

}  // namespace diospyros::vir
