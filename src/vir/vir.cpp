#include "vir/vir.h"

#include <sstream>

namespace diospyros::vir {

bool
vop_writes_vector(VOp op)
{
    switch (op) {
      case VOp::kVLoadA:
      case VOp::kVConst:
      case VOp::kShuffle:
      case VOp::kSelect:
      case VOp::kInsert:
      case VOp::kVBinary:
      case VOp::kVUnary:
      case VOp::kVMac:
        return true;
      default:
        return false;
    }
}

std::string
to_string(const VInstr& i)
{
    std::ostringstream os;
    auto lanes = [&os, &i] {
        os << '[';
        for (std::size_t l = 0; l < i.lanes.size(); ++l) {
            os << (l ? " " : "") << i.lanes[l];
        }
        os << ']';
    };
    switch (i.op) {
      case VOp::kSConst:
        os << "s" << i.dst << " = " << i.values[0];
        break;
      case VOp::kSLoad:
        os << "s" << i.dst << " = " << i.array.str() << "[" << i.offset
           << "]";
        break;
      case VOp::kSBinary:
        os << "s" << i.dst << " = s" << i.a << ' ' << op_name(i.alu)
           << " s" << i.b;
        break;
      case VOp::kSUnary:
        os << "s" << i.dst << " = " << op_name(i.alu) << "(s" << i.a
           << ")";
        break;
      case VOp::kSMac:
        os << "s" << i.dst << " = s" << i.a << " + s" << i.b << "*s"
           << i.c;
        break;
      case VOp::kSCall: {
        os << "s" << i.dst << " = " << i.fn.str() << "(";
        for (std::size_t k = 0; k < i.args.size(); ++k) {
            os << (k ? ", " : "") << "s" << i.args[k];
        }
        os << ")";
        break;
      }
      case VOp::kSExtract:
        os << "s" << i.dst << " = v" << i.a << "[" << i.lane << "]";
        break;
      case VOp::kVLoadA:
        os << "v" << i.dst << " = vload " << i.array.str() << "["
           << i.offset << "..]";
        break;
      case VOp::kVConst: {
        os << "v" << i.dst << " = vconst {";
        for (std::size_t k = 0; k < i.values.size(); ++k) {
            os << (k ? " " : "") << i.values[k];
        }
        os << "}";
        break;
      }
      case VOp::kShuffle:
        os << "v" << i.dst << " = shuffle v" << i.a << " ";
        lanes();
        break;
      case VOp::kSelect:
        os << "v" << i.dst << " = select v" << i.a << ", v" << i.b << " ";
        lanes();
        break;
      case VOp::kInsert:
        os << "v" << i.dst << " = insert v" << i.a << "[" << i.lane
           << "] <- s" << i.b;
        break;
      case VOp::kVBinary:
        os << "v" << i.dst << " = v" << i.a << ' ' << op_name(i.alu)
           << " v" << i.b;
        break;
      case VOp::kVUnary:
        os << "v" << i.dst << " = " << op_name(i.alu) << "(v" << i.a
           << ")";
        break;
      case VOp::kVMac:
        os << "v" << i.dst << " = v" << i.a << " + v" << i.b << "*v"
           << i.c;
        break;
      case VOp::kVStore:
        os << "vstore " << i.array.str() << "[" << i.offset
           << "..] = v" << i.a;
        break;
      case VOp::kSStore:
        os << i.array.str() << "[" << i.offset << "] = s" << i.a;
        break;
    }
    return os.str();
}

std::string
VProgram::to_string() const
{
    std::ostringstream os;
    os << "; vector IR, width " << vector_width << ", "
       << instrs.size() << " instructions\n";
    for (const VInstr& i : instrs) {
        os << "  " << vir::to_string(i) << '\n';
    }
    return os.str();
}

}  // namespace diospyros::vir
