/**
 * @file
 * The backend's machine-independent vector IR (paper §4).
 *
 * A VProgram is straight-line SSA code over scalar and vector value ids:
 * loads, stores, arbitrary shuffles/selects (the `vec-shuffle` of the
 * paper), lane inserts, arithmetic, and fused multiply-accumulate. It
 * abstracts the concrete DSP: instruction selection to the simulated
 * machine ISA (or to C intrinsics text) happens in emit.h / cprint.h.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/symbol.h"
#include "ir/term.h"

namespace diospyros::vir {

/** Opcode of a vector-IR instruction. */
enum class VOp : std::uint8_t {
    // Scalar value producers.
    kSConst,   ///< s[dst] = constant
    kSLoad,    ///< s[dst] = array[offset]
    kSBinary,  ///< s[dst] = s[a] (op) s[b]     op in {+,-,*,/}
    kSUnary,   ///< s[dst] = op(s[a])            op in {neg,sqrt,sgn,recip}
    kSMac,     ///< s[dst] = s[a] + s[b]*s[c]
    kSCall,    ///< s[dst] = fn(s[args...])
    kSExtract, ///< s[dst] = v[a][lane]

    // Vector value producers.
    kVLoadA,   ///< v[dst] = array[offset .. offset+W)   (aligned block)
    kVConst,   ///< v[dst] = literal lane constants
    kShuffle,  ///< v[dst][i] = v[a][lanes[i]]
    kSelect,   ///< v[dst][i] = concat(v[a], v[b])[lanes[i]]
    kInsert,   ///< v[dst] = v[a] with lane `lane` replaced by s[b]
    kVBinary,  ///< v[dst] = v[a] (op) v[b]
    kVUnary,   ///< v[dst] = op(v[a])
    kVMac,     ///< v[dst] = v[a] + v[b]*v[c]

    // Memory effects.
    kVStore,  ///< array[offset .. offset+W) = v[a]
    kSStore,  ///< array[offset] = s[a]
};

/** One vector-IR instruction. */
struct VInstr {
    VOp op = VOp::kSConst;
    /** Scalar DSL operator for kSBinary/kSUnary/kVBinary/kVUnary. */
    Op alu = Op::kAdd;
    /** Destination value id (-1 for stores). */
    int dst = -1;
    /** Operand value ids. */
    int a = -1, b = -1, c = -1;
    /** Extra operands for kSCall. */
    std::vector<int> args;
    /** Called function for kSCall. */
    Symbol fn;
    /** Memory operand. */
    Symbol array;
    std::int64_t offset = 0;
    /** Lane immediate for kInsert / kSExtract. */
    int lane = 0;
    /** Shuffle/select lane table. */
    std::vector<int> lanes;
    /** Literal lane values for kVConst / value for kSConst. */
    std::vector<double> values;
};

/** Whether this opcode writes a vector (vs scalar) value. */
bool vop_writes_vector(VOp op);

/**
 * Calls fn(value_id, is_vector) for every operand value id the
 * instruction reads. The single source of truth for operand kinds —
 * shared by LVN, VProgram::validate(), and the analysis verifier.
 */
void vinstr_for_each_use(const VInstr& instr,
                         const std::function<void(int, bool)>& fn);

/** A straight-line vector-IR program. */
struct VProgram {
    int vector_width = 4;
    /** One past the largest scalar / vector value id. */
    int num_scalar_values = 0;
    int num_vector_values = 0;
    std::vector<VInstr> instrs;

    int
    fresh_scalar()
    {
        return num_scalar_values++;
    }
    int
    fresh_vector()
    {
        return num_vector_values++;
    }

    /** Renders the program as readable IR text. */
    std::string to_string() const;

    /**
     * Cheap structural self-check: SSA def-before-use, value ids within
     * the declared ranges, lane tables/immediates in bounds for
     * vector_width, offsets non-negative, literal payload sizes. Returns
     * "" when well-formed, else a description of the first violation.
     * The full diagnostic verifier (memory extents, store order, stable
     * codes) lives in src/analysis/verify_vir.h.
     */
    std::string validate() const;
};

/** Renders one instruction as IR text. */
std::string to_string(const VInstr& instr);

}  // namespace diospyros::vir
