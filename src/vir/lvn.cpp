#include "vir/lvn.h"

#include <functional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/error.h"

namespace diospyros::vir {

namespace {

/** Canonical textual key for a value-producing instruction. */
std::string
value_key(const VInstr& i)
{
    std::ostringstream os;
    os << static_cast<int>(i.op) << '|' << static_cast<int>(i.alu) << '|'
       << i.a << ',' << i.b << ',' << i.c << '|';
    for (const int arg : i.args) {
        os << arg << ';';
    }
    os << '|' << (i.fn.valid() ? i.fn.str() : "") << '|'
       << (i.array.valid() ? i.array.str() : "") << '|' << i.offset << '|'
       << i.lane << '|';
    for (const int l : i.lanes) {
        os << l << ';';
    }
    os << '|';
    for (const double v : i.values) {
        os << v << ';';
    }
    return os.str();
}

/** Applies a value renaming to an instruction's operands. */
void
rename_operands(VInstr& i, const std::unordered_map<int, int>& s_rename,
                const std::unordered_map<int, int>& v_rename)
{
    auto fix = [](int& operand, const std::unordered_map<int, int>& map) {
        if (operand < 0) {
            return;
        }
        auto it = map.find(operand);
        if (it != map.end()) {
            operand = it->second;
        }
    };
    switch (i.op) {
      case VOp::kSBinary:
      case VOp::kSMac:
        fix(i.a, s_rename);
        fix(i.b, s_rename);
        fix(i.c, s_rename);
        break;
      case VOp::kSUnary:
        fix(i.a, s_rename);
        break;
      case VOp::kSCall:
        for (int& arg : i.args) {
            fix(arg, s_rename);
        }
        break;
      case VOp::kSExtract:
        fix(i.a, v_rename);
        break;
      case VOp::kShuffle:
      case VOp::kVUnary:
        fix(i.a, v_rename);
        break;
      case VOp::kSelect:
      case VOp::kVBinary:
        fix(i.a, v_rename);
        fix(i.b, v_rename);
        break;
      case VOp::kVMac:
        fix(i.a, v_rename);
        fix(i.b, v_rename);
        fix(i.c, v_rename);
        break;
      case VOp::kInsert:
        fix(i.a, v_rename);
        fix(i.b, s_rename);
        break;
      case VOp::kVStore:
        fix(i.a, v_rename);
        break;
      case VOp::kSStore:
        fix(i.a, s_rename);
        break;
      case VOp::kSConst:
      case VOp::kSLoad:
      case VOp::kVLoadA:
      case VOp::kVConst:
        break;
    }
}

bool
is_store(const VInstr& i)
{
    return i.op == VOp::kVStore || i.op == VOp::kSStore;
}

}  // namespace

LvnStats
run_lvn(VProgram& program)
{
    LvnStats stats;
    stats.input_instrs = program.instrs.size();

    // Pass 1: forward value numbering.
    std::unordered_map<std::string, int> table;
    std::unordered_map<int, int> s_rename, v_rename;
    std::vector<VInstr> numbered;
    numbered.reserve(program.instrs.size());
    for (VInstr i : program.instrs) {
        rename_operands(i, s_rename, v_rename);
        if (is_store(i)) {
            numbered.push_back(std::move(i));
            continue;
        }
        const std::string key = value_key(i);
        auto [it, inserted] = table.try_emplace(key, i.dst);
        if (!inserted) {
            auto& rename =
                vop_writes_vector(i.op) ? v_rename : s_rename;
            rename[i.dst] = it->second;
            ++stats.value_numbered;
            continue;
        }
        numbered.push_back(std::move(i));
    }

    // Pass 2: backward liveness; stores are roots.
    std::vector<bool> live_s(
        static_cast<std::size_t>(program.num_scalar_values), false);
    std::vector<bool> live_v(
        static_cast<std::size_t>(program.num_vector_values), false);
    auto mark = [&](int id, bool is_vec) {
        if (id < 0) {
            return;
        }
        auto& live = is_vec ? live_v : live_s;
        live[static_cast<std::size_t>(id)] = true;
    };
    std::vector<bool> keep(numbered.size(), false);
    for (std::size_t idx = numbered.size(); idx-- > 0;) {
        const VInstr& i = numbered[idx];
        const bool needed =
            is_store(i) ||
            (i.dst >= 0 &&
             (vop_writes_vector(i.op)
                  ? live_v[static_cast<std::size_t>(i.dst)]
                  : live_s[static_cast<std::size_t>(i.dst)]));
        if (!needed) {
            ++stats.dead_removed;
            continue;
        }
        keep[idx] = true;
        vinstr_for_each_use(i, mark);
    }

    std::vector<VInstr> out;
    out.reserve(numbered.size());
    for (std::size_t idx = 0; idx < numbered.size(); ++idx) {
        if (keep[idx]) {
            out.push_back(std::move(numbered[idx]));
        }
    }
    program.instrs = std::move(out);
    stats.output_instrs = program.instrs.size();
    return stats;
}

}  // namespace diospyros::vir
