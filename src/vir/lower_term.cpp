#include "vir/lower_term.h"

#include <map>
#include <unordered_map>

#include "support/error.h"
#include "support/faults.h"

namespace diospyros::vir {

namespace {

/** Where one Vec lane's value comes from. */
struct LaneSource {
    enum class Kind { kGet, kConstant, kScalarExpr } kind;
    // kGet
    Symbol array;
    std::int64_t index = 0;
    // kConstant
    double value = 0.0;
    // kScalarExpr
    const Term* expr = nullptr;
};

class TermLowering {
  public:
    TermLowering(int width, const std::vector<OutputSlot>& outputs,
                 bool fuse_scalar_mac)
        : width_(width), outputs_(outputs),
          fuse_scalar_mac_(fuse_scalar_mac)
    {
        prog_.vector_width = width;
    }

    VProgram
    run(const TermRef& root)
    {
        lower_outputs(root);
        return std::move(prog_);
    }

  private:
    // --- Scalar expressions -----------------------------------------------

    int
    scalar_value(const Term* t)
    {
        auto it = scalar_memo_.find(t);
        if (it != scalar_memo_.end()) {
            return it->second;
        }
        const int id = compute_scalar(t);
        scalar_memo_.emplace(t, id);
        return id;
    }

    int
    compute_scalar(const Term* t)
    {
        switch (t->op()) {
          case Op::kConst: {
            const int dst = prog_.fresh_scalar();
            push({.op = VOp::kSConst,
                  .dst = dst,
                  .values = {t->value().to_double()}});
            return dst;
          }
          case Op::kGet: {
            const int dst = prog_.fresh_scalar();
            VInstr i{.op = VOp::kSLoad, .dst = dst};
            i.array = t->symbol();
            i.offset = t->index();
            push(std::move(i));
            return dst;
          }
          case Op::kAdd: {
            // Scalar MAC fusion: a + b*c in either operand order (only
            // when the target actually has a scalar MAC; otherwise keep
            // the mul visible so LVN can share it).
            const Term* lhs = t->child(0).get();
            const Term* rhs = t->child(1).get();
            if (rhs->op() != Op::kMul && lhs->op() == Op::kMul) {
                std::swap(lhs, rhs);
            }
            if (fuse_scalar_mac_ && rhs->op() == Op::kMul) {
                const int a = scalar_value(lhs);
                const int b = scalar_value(rhs->child(0).get());
                const int c = scalar_value(rhs->child(1).get());
                const int dst = prog_.fresh_scalar();
                push({.op = VOp::kSMac, .dst = dst, .a = a, .b = b, .c = c});
                return dst;
            }
            [[fallthrough]];
          }
          case Op::kSub:
          case Op::kMul:
          case Op::kDiv: {
            const int a = scalar_value(t->child(0).get());
            const int b = scalar_value(t->child(1).get());
            const int dst = prog_.fresh_scalar();
            push({.op = VOp::kSBinary,
                  .alu = t->op(),
                  .dst = dst,
                  .a = a,
                  .b = b});
            return dst;
          }
          case Op::kNeg:
          case Op::kSqrt:
          case Op::kSgn:
          case Op::kRecip: {
            const int a = scalar_value(t->child(0).get());
            const int dst = prog_.fresh_scalar();
            push({.op = VOp::kSUnary, .alu = t->op(), .dst = dst, .a = a});
            return dst;
          }
          case Op::kCall: {
            std::vector<int> args;
            args.reserve(t->arity());
            for (const TermRef& c : t->children()) {
                args.push_back(scalar_value(c.get()));
            }
            const int dst = prog_.fresh_scalar();
            VInstr i{.op = VOp::kSCall, .dst = dst};
            i.args = std::move(args);
            i.fn = t->symbol();
            push(std::move(i));
            return dst;
          }
          case Op::kSymbol:
            throw UserError("free scalar variable in extracted program: " +
                            t->symbol().str());
          default:
            throw UserError(
                std::string("vector operator in scalar position: ") +
                op_name(t->op()));
        }
    }

    // --- Vector expressions --------------------------------------------------

    int
    vector_value(const Term* t)
    {
        auto it = vector_memo_.find(t);
        if (it != vector_memo_.end()) {
            return it->second;
        }
        const int id = compute_vector(t);
        vector_memo_.emplace(t, id);
        return id;
    }

    int
    compute_vector(const Term* t)
    {
        switch (t->op()) {
          case Op::kVec:
            return materialize_vec(t);
          case Op::kVecAdd:
          case Op::kVecMinus:
          case Op::kVecMul:
          case Op::kVecDiv: {
            static const std::unordered_map<Op, Op> kScalarOf = {
                {Op::kVecAdd, Op::kAdd},
                {Op::kVecMinus, Op::kSub},
                {Op::kVecMul, Op::kMul},
                {Op::kVecDiv, Op::kDiv},
            };
            const int a = vector_value(t->child(0).get());
            const int b = vector_value(t->child(1).get());
            const int dst = prog_.fresh_vector();
            push({.op = VOp::kVBinary,
                  .alu = kScalarOf.at(t->op()),
                  .dst = dst,
                  .a = a,
                  .b = b});
            return dst;
          }
          case Op::kVecMAC: {
            const int acc = vector_value(t->child(0).get());
            const int x = vector_value(t->child(1).get());
            const int y = vector_value(t->child(2).get());
            const int dst = prog_.fresh_vector();
            push({.op = VOp::kVMac, .dst = dst, .a = acc, .b = x, .c = y});
            return dst;
          }
          case Op::kVecNeg:
          case Op::kVecSgn:
          case Op::kVecSqrt:
          case Op::kVecRecip: {
            static const std::unordered_map<Op, Op> kScalarOf = {
                {Op::kVecNeg, Op::kNeg},
                {Op::kVecSgn, Op::kSgn},
                {Op::kVecSqrt, Op::kSqrt},
                {Op::kVecRecip, Op::kRecip},
            };
            const int a = vector_value(t->child(0).get());
            const int dst = prog_.fresh_vector();
            push({.op = VOp::kVUnary,
                  .alu = kScalarOf.at(t->op()),
                  .dst = dst,
                  .a = a});
            return dst;
          }
          default:
            throw UserError(
                std::string("unsupported operator in vector position: ") +
                op_name(t->op()));
        }
    }

    /** Classifies one Vec lane. */
    static LaneSource
    classify_lane(const Term* lane)
    {
        switch (lane->op()) {
          case Op::kConst:
            return LaneSource{.kind = LaneSource::Kind::kConstant,
                              .value = lane->value().to_double()};
          case Op::kGet:
            return LaneSource{.kind = LaneSource::Kind::kGet,
                              .array = lane->symbol(),
                              .index = lane->index()};
          default:
            return LaneSource{.kind = LaneSource::Kind::kScalarExpr,
                              .expr = lane};
        }
    }

    /** Aligned block load, memoized per (array, block). */
    int
    block_load(Symbol array, std::int64_t block_base)
    {
        const auto key = std::make_pair(array, block_base);
        auto it = block_loads_.find(key);
        if (it != block_loads_.end()) {
            return it->second;
        }
        const int dst = prog_.fresh_vector();
        VInstr i{.op = VOp::kVLoadA, .dst = dst};
        i.array = array;
        i.offset = block_base;
        push(std::move(i));
        block_loads_.emplace(key, dst);
        return dst;
    }

    /** Implements the gather plan for a Vec term. */
    int
    materialize_vec(const Term* t)
    {
        DIOS_CHECK(static_cast<int>(t->arity()) == width_,
                   "Vec width does not match the target vector width");
        std::vector<LaneSource> lanes;
        lanes.reserve(t->arity());
        for (const TermRef& c : t->children()) {
            lanes.push_back(classify_lane(c.get()));
        }

        // Fast path: a contiguous aligned run from one array.
        {
            bool contiguous = lanes[0].kind == LaneSource::Kind::kGet &&
                              lanes[0].index % width_ == 0;
            for (int l = 1; contiguous && l < width_; ++l) {
                const auto& s = lanes[static_cast<std::size_t>(l)];
                contiguous = s.kind == LaneSource::Kind::kGet &&
                             s.array == lanes[0].array &&
                             s.index == lanes[0].index + l;
            }
            if (contiguous) {
                return block_load(lanes[0].array, lanes[0].index);
            }
        }

        // Gather plan: (source vector, lane-within-source) per lane.
        struct Placement {
            int source = -1;
            int lane = 0;
        };
        std::vector<Placement> place(static_cast<std::size_t>(width_));
        std::vector<int> sources;  // distinct vector ids, fold order
        auto source_slot = [&sources](int vec_id) {
            for (std::size_t s = 0; s < sources.size(); ++s) {
                if (sources[s] == vec_id) {
                    return static_cast<int>(s);
                }
            }
            sources.push_back(vec_id);
            return static_cast<int>(sources.size() - 1);
        };

        // Constants share one literal vector, already in final positions.
        bool any_const = false;
        std::vector<double> const_lanes(static_cast<std::size_t>(width_),
                                        0.0);
        for (int l = 0; l < width_; ++l) {
            if (lanes[static_cast<std::size_t>(l)].kind ==
                LaneSource::Kind::kConstant) {
                any_const = true;
                const_lanes[static_cast<std::size_t>(l)] =
                    lanes[static_cast<std::size_t>(l)].value;
            }
        }
        int const_vec = -1;
        if (any_const) {
            const_vec = prog_.fresh_vector();
            VInstr i{.op = VOp::kVConst, .dst = const_vec};
            i.values = const_lanes;
            push(std::move(i));
        }

        for (int l = 0; l < width_; ++l) {
            const auto& s = lanes[static_cast<std::size_t>(l)];
            switch (s.kind) {
              case LaneSource::Kind::kGet: {
                const std::int64_t block = (s.index / width_) * width_;
                const int vec = block_load(s.array, block);
                place[static_cast<std::size_t>(l)] =
                    Placement{source_slot(vec),
                              static_cast<int>(s.index - block)};
                break;
              }
              case LaneSource::Kind::kConstant:
                place[static_cast<std::size_t>(l)] =
                    Placement{source_slot(const_vec), l};
                break;
              case LaneSource::Kind::kScalarExpr:
                // Inserted after vector assembly.
                break;
            }
        }

        int cur = -1;
        if (sources.empty()) {
            // Every lane is scalar computation: start from zeros.
            cur = prog_.fresh_vector();
            VInstr i{.op = VOp::kVConst, .dst = cur};
            i.values.assign(static_cast<std::size_t>(width_), 0.0);
            push(std::move(i));
        } else if (sources.size() == 1) {
            // One source: identity passthrough or a single shuffle.
            bool identity = true;
            for (int l = 0; l < width_; ++l) {
                const auto& p = place[static_cast<std::size_t>(l)];
                if (p.source == 0 && p.lane != l) {
                    identity = false;
                }
            }
            bool covers_all = true;
            for (int l = 0; l < width_; ++l) {
                covers_all &= place[static_cast<std::size_t>(l)].source == 0;
            }
            if (identity && covers_all) {
                cur = sources[0];
            } else {
                std::vector<int> table(static_cast<std::size_t>(width_), 0);
                for (int l = 0; l < width_; ++l) {
                    const auto& p = place[static_cast<std::size_t>(l)];
                    table[static_cast<std::size_t>(l)] =
                        p.source == 0 ? p.lane : 0;
                }
                cur = prog_.fresh_vector();
                VInstr i{.op = VOp::kShuffle, .dst = cur, .a = sources[0]};
                i.lanes = std::move(table);
                push(std::move(i));
            }
        } else {
            // Nested two-register selects (paper §5.1): the first select
            // places sources 0 and 1 into final lane positions; each
            // further select folds one more source in.
            std::vector<int> table(static_cast<std::size_t>(width_), 0);
            for (int l = 0; l < width_; ++l) {
                const auto& p = place[static_cast<std::size_t>(l)];
                if (p.source == 0) {
                    table[static_cast<std::size_t>(l)] = p.lane;
                } else if (p.source == 1) {
                    table[static_cast<std::size_t>(l)] = width_ + p.lane;
                }
            }
            cur = prog_.fresh_vector();
            {
                VInstr i{.op = VOp::kSelect,
                         .dst = cur,
                         .a = sources[0],
                         .b = sources[1]};
                i.lanes = table;
                push(std::move(i));
            }
            for (std::size_t s = 2; s < sources.size(); ++s) {
                std::vector<int> fold(static_cast<std::size_t>(width_));
                for (int l = 0; l < width_; ++l) {
                    const auto& p = place[static_cast<std::size_t>(l)];
                    fold[static_cast<std::size_t>(l)] =
                        (p.source == static_cast<int>(s))
                            ? width_ + p.lane
                            : l;
                }
                const int next = prog_.fresh_vector();
                VInstr i{.op = VOp::kSelect,
                         .dst = next,
                         .a = cur,
                         .b = sources[s]};
                i.lanes = std::move(fold);
                push(std::move(i));
                cur = next;
            }
        }

        // Insert leftover scalar-computation lanes.
        for (int l = 0; l < width_; ++l) {
            const auto& s = lanes[static_cast<std::size_t>(l)];
            if (s.kind != LaneSource::Kind::kScalarExpr) {
                continue;
            }
            const int sval = scalar_value(s.expr);
            const int next = prog_.fresh_vector();
            VInstr i{.op = VOp::kInsert, .dst = next, .a = cur, .b = sval};
            i.lane = l;
            push(std::move(i));
            cur = next;
        }
        return cur;
    }

    // --- Output mapping -------------------------------------------------------

    /** (array name, local offset) for a flattened padded position. */
    std::pair<std::string, std::int64_t>
    locate(std::int64_t pos) const
    {
        std::int64_t base = 0;
        for (const OutputSlot& slot : outputs_) {
            if (pos < base + slot.padded_len) {
                return {slot.name, pos - base};
            }
            base += slot.padded_len;
        }
        throw UserError("output position out of range");
    }

    /** Flattens List / Concat structure into storeable elements. */
    void
    collect_elements(const TermRef& t, std::vector<TermRef>& out)
    {
        if (t->op() == Op::kList || t->op() == Op::kConcat) {
            for (const TermRef& c : t->children()) {
                collect_elements(c, out);
            }
            return;
        }
        out.push_back(t);
    }

    void
    lower_outputs(const TermRef& root)
    {
        std::int64_t total_padded = 0;
        for (const OutputSlot& slot : outputs_) {
            DIOS_CHECK(slot.padded_len % width_ == 0,
                       "output slot not padded to the vector width");
            total_padded += slot.padded_len;
        }

        std::vector<TermRef> elements;
        collect_elements(root, elements);

        std::int64_t pos = 0;
        for (const TermRef& e : elements) {
            if (e->is_scalar()) {
                // Skip constant-zero scalar stores: output memory starts
                // zeroed, and padding elements are all zero.
                if (!e->is_zero()) {
                    const auto [array, offset] = locate(pos);
                    const int sval = scalar_value(e.get());
                    VInstr i{.op = VOp::kSStore, .a = sval};
                    i.array = Symbol(array);
                    i.offset = offset;
                    push(std::move(i));
                }
                pos += 1;
                continue;
            }
            const Shape shape = check_shape(e);
            DIOS_CHECK(shape.kind == Shape::Kind::kVector &&
                           shape.width == width_,
                       "top-level vector element has unexpected width");
            const auto [array, offset] = locate(pos);
            DIOS_CHECK(offset % width_ == 0,
                       "vector store is not aligned to the output slot");
            const int vec = vector_value(e.get());
            VInstr i{.op = VOp::kVStore, .a = vec};
            i.array = Symbol(array);
            i.offset = offset;
            push(std::move(i));
            pos += width_;
        }
        DIOS_CHECK(pos == total_padded,
                   "extracted program width does not match output layout");
    }

    /**
     * Single construction site for every emitted instruction: rejects
     * malformed immediates (negative memory offsets, out-of-range lane
     * indices) instead of silently accepting them into the program.
     */
    void
    push(VInstr instr)
    {
        switch (instr.op) {
          case VOp::kSLoad:
          case VOp::kVLoadA:
          case VOp::kVStore:
          case VOp::kSStore:
            DIOS_CHECK(instr.offset >= 0,
                       "negative memory offset in lowered instruction: " +
                           vir::to_string(instr));
            break;
          case VOp::kInsert:
          case VOp::kSExtract:
            DIOS_ASSERT(instr.lane >= 0 && instr.lane < width_,
                        "lane immediate out of range in lowered "
                        "instruction: " +
                            vir::to_string(instr));
            break;
          case VOp::kShuffle:
          case VOp::kSelect: {
            const int bound =
                instr.op == VOp::kSelect ? 2 * width_ : width_;
            DIOS_ASSERT(static_cast<int>(instr.lanes.size()) == width_,
                        "lane table size mismatch in lowered "
                        "instruction: " +
                            vir::to_string(instr));
            for (const int l : instr.lanes) {
                DIOS_ASSERT(l >= 0 && l < bound,
                            "lane index out of range in lowered "
                            "instruction: " +
                                vir::to_string(instr));
            }
            break;
          }
          default:
            break;
        }
        prog_.instrs.push_back(std::move(instr));
    }

    int width_;
    const std::vector<OutputSlot>& outputs_;
    bool fuse_scalar_mac_;
    VProgram prog_;
    std::unordered_map<const Term*, int> scalar_memo_;
    std::unordered_map<const Term*, int> vector_memo_;
    std::map<std::pair<Symbol, std::int64_t>, int> block_loads_;
};

}  // namespace

VProgram
lower_term(const TermRef& root, int width,
           const std::vector<OutputSlot>& outputs, bool fuse_scalar_mac)
{
    DIOS_FAULT_POINT("lower.term");
    DIOS_ASSERT(root != nullptr, "lower_term() on null term");
    TermLowering lowering(width, outputs, fuse_scalar_mac);
    return lowering.run(root);
}

}  // namespace diospyros::vir
