/**
 * @file
 * Pretty-printing vector IR as C++ with Tensilica-style PDX_* intrinsics
 * (the artifact the real Diospyros hands to the vendor toolchain, §4).
 *
 * The simulated DSP executes the emit.h path; this printer produces the
 * human-facing kernel source so users can inspect — or port — what the
 * compiler found.
 */
#pragma once

#include <string>

#include "vir/vir.h"

namespace diospyros::vir {

/** Renders a compiled kernel as C++-with-intrinsics source text. */
std::string to_c_intrinsics(const VProgram& program,
                            const std::string& kernel_name);

}  // namespace diospyros::vir
