/**
 * @file
 * Additional small-kernel definitions beyond Table 1 — the wider
 * "plethora of kernels" the paper's introduction motivates (machine
 * perception pipelines mix many small fixed-size operations). These
 * exercise the division/sqrt paths and serve as ready-made library
 * content for users.
 */
#pragma once

#include "scalar/ast.h"

namespace diospyros::kernels {

/** 1D FIR filter: y[i] = sum_t h[t] * x[i + t], valid region only. */
scalar::Kernel make_fir(int signal_len, int taps);

/** Vector normalization: y = x / ||x||_2. */
scalar::Kernel make_normalize(int n);

/** 2x2 matrix inverse via the adjugate (branch-free; assumes det != 0). */
scalar::Kernel make_inverse2x2();

/** Affine transform of a point batch: y_i = A (3x3) * x_i + b. */
scalar::Kernel make_affine3(int points);

/** Pairwise squared Euclidean distances between two point sets (3D). */
scalar::Kernel make_pairwise_dist2(int a_points, int b_points);

}  // namespace diospyros::kernels
