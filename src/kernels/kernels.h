/**
 * @file
 * The paper's benchmark kernels (Table 1), written once in the scalar
 * input language and parameterized over the sizes the evaluation sweeps:
 *
 *  - 2DConv   — 2D convolution with implicit zero padding ("full"
 *               correlation output, (iR+fR-1) x (iC+fC-1)); the §2
 *               motivating example, boundary conditions and all.
 *  - MatMul   — dense matrix multiply, A (n x m) * B (m x p).
 *  - QProd    — Euclidean Lie group product (paper cites Sophus):
 *               quaternion product + rotated-translation accumulate,
 *               sizes (4, 3, 4, 3).
 *  - QRDecomp — Householder QR of a square matrix, producing Q and R
 *               (the Theia case-study hot spot, §5.7).
 */
#pragma once

#include <string>
#include <vector>

#include "scalar/ast.h"
#include "scalar/interp.h"

namespace diospyros::kernels {

/** 2D convolution: input (irows x icols), filter (frows x fcols). */
scalar::Kernel make_conv2d(int irows, int icols, int frows, int fcols);

/** Matrix multiply: A (n x m) * B (m x p) -> C (n x p). */
scalar::Kernel make_matmul(int n, int m, int p);

/** Euclidean Lie group (quaternion + translation) product. */
scalar::Kernel make_qprod();

/** Householder QR decomposition of an n x n matrix into Q and R. */
scalar::Kernel make_qrdecomp(int n);

/** One Table 1 row: a kernel plus its display labels. */
struct BenchmarkInstance {
    std::string suite;  ///< "2DConv", "MatMul", "QProd", "QRDecomp"
    std::string size;   ///< e.g. "3x5, 3x3"
    scalar::Kernel kernel;

    std::string
    label() const
    {
        return suite + " " + size;
    }
};

/** All 21 kernels of Table 1 / Figure 5, in the paper's order. */
std::vector<BenchmarkInstance> table1_instances();

/**
 * Deterministic pseudo-random inputs for a kernel. QRDecomp inputs are
 * conditioned (diagonally dominated) so the decomposition is well-posed,
 * mirroring how such kernels are exercised in practice.
 */
scalar::BufferMap make_inputs(const scalar::Kernel& kernel,
                              std::uint64_t seed);

}  // namespace diospyros::kernels
