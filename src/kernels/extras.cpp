#include "kernels/extras.h"

namespace diospyros::kernels {

using scalar::f_const;
using scalar::f_sqrt;
using scalar::IntExpr;
using scalar::IntRef;
using scalar::Kernel;
using scalar::KernelBuilder;
using scalar::st_accumulate;
using scalar::st_for;
using scalar::st_store;

namespace {

IntRef
ic(std::int64_t v)
{
    return IntExpr::constant(v);
}

}  // namespace

Kernel
make_fir(int signal_len, int taps)
{
    KernelBuilder kb("fir");
    const IntRef n = kb.param("n", signal_len);
    const IntRef t = kb.param("t", taps);
    const IntRef out_len = kb.param("m", signal_len - taps + 1);
    kb.input("x", n);
    kb.input("h", t);
    kb.output("y", out_len);
    const IntRef i = KernelBuilder::var("i");
    const IntRef j = KernelBuilder::var("j");
    kb.append(st_for(
        "i", ic(0), out_len,
        {st_for("j", ic(0), t,
                {st_accumulate("y", i,
                               KernelBuilder::load("x", i + j) *
                                   KernelBuilder::load("h", j))})}));
    return kb.build();
}

Kernel
make_normalize(int n)
{
    KernelBuilder kb("normalize");
    const IntRef len = kb.param("n", n);
    kb.input("x", len);
    kb.output("y", len);
    kb.scratch("s", ic(1));
    const IntRef i = KernelBuilder::var("i");
    kb.append(st_store("s", ic(0), f_const(0)));
    kb.append(st_for("i", ic(0), len,
                     {st_accumulate("s", ic(0),
                                    KernelBuilder::load("x", i) *
                                        KernelBuilder::load("x", i))}));
    kb.append(st_store("s", ic(0),
                       f_const(1) / f_sqrt(KernelBuilder::load("s", ic(0)))));
    kb.append(st_for("i", ic(0), len,
                     {st_store("y", i,
                               KernelBuilder::load("x", i) *
                                   KernelBuilder::load("s", ic(0)))}));
    return kb.build();
}

Kernel
make_inverse2x2()
{
    KernelBuilder kb("inverse2x2");
    kb.input("A", ic(4));
    kb.output("B", ic(4));
    kb.scratch("d", ic(1));
    auto a = [](int i) { return KernelBuilder::load("A", ic(i)); };
    auto d = []() { return KernelBuilder::load("d", ic(0)); };
    kb.append(st_store("d", ic(0),
                       f_const(1) / (a(0) * a(3) - a(1) * a(2))));
    kb.append(st_store("B", ic(0), a(3) * d()));
    kb.append(st_store("B", ic(1), (f_const(0) - a(1)) * d()));
    kb.append(st_store("B", ic(2), (f_const(0) - a(2)) * d()));
    kb.append(st_store("B", ic(3), a(0) * d()));
    return kb.build();
}

Kernel
make_affine3(int points)
{
    KernelBuilder kb("affine3");
    const IntRef n = kb.param("n", points);
    kb.input("A", ic(9));
    kb.input("b", ic(3));
    kb.input("x", n * 3);
    kb.output("y", n * 3);
    const IntRef p = KernelBuilder::var("p");
    const IntRef r = KernelBuilder::var("r");
    const IntRef c = KernelBuilder::var("c");
    kb.append(st_for(
        "p", ic(0), n,
        {st_for(
            "r", ic(0), ic(3),
            {st_store("y", p * 3 + r, KernelBuilder::load("b", r)),
             st_for("c", ic(0), ic(3),
                    {st_accumulate("y", p * 3 + r,
                                   KernelBuilder::load("A", r * 3 + c) *
                                       KernelBuilder::load("x",
                                                           p * 3 + c))})})}));
    return kb.build();
}

Kernel
make_pairwise_dist2(int a_points, int b_points)
{
    KernelBuilder kb("pairwise-dist2");
    const IntRef na = kb.param("na", a_points);
    const IntRef nb = kb.param("nb", b_points);
    kb.input("P", na * 3);
    kb.input("Q", nb * 3);
    kb.output("D", na * nb);
    const IntRef i = KernelBuilder::var("i");
    const IntRef j = KernelBuilder::var("j");
    const IntRef k = KernelBuilder::var("k");
    auto diff = [&](IntRef pi, IntRef qj, IntRef kk) {
        return KernelBuilder::load("P", pi * 3 + kk) -
               KernelBuilder::load("Q", qj * 3 + kk);
    };
    kb.append(st_for(
        "i", ic(0), na,
        {st_for("j", ic(0), nb,
                {st_for("k", ic(0), ic(3),
                        {st_accumulate("D", i * nb + j,
                                       diff(i, j, k) * diff(i, j, k))})})}));
    return kb.build();
}

}  // namespace diospyros::kernels
