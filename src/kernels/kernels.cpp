#include "kernels/kernels.h"

#include "support/rng.h"

namespace diospyros::kernels {

using scalar::f_const;
using scalar::IntExpr;
using scalar::IntRef;
using scalar::Kernel;
using scalar::KernelBuilder;
using scalar::st_accumulate;
using scalar::st_for;
using scalar::st_if;
using scalar::st_store;
using scalar::StmtRef;

namespace {

IntRef
ic(std::int64_t v)
{
    return IntExpr::constant(v);
}

}  // namespace

Kernel
make_conv2d(int irows, int icols, int frows, int fcols)
{
    // The paper's §2 motivating kernel, verbatim structure: "full"
    // convolution with implicit zero padding and a transposed filter.
    KernelBuilder kb("conv2d");
    const IntRef ir = kb.param("iR", irows);
    const IntRef icn = kb.param("iC", icols);
    const IntRef fr = kb.param("fR", frows);
    const IntRef fc = kb.param("fC", fcols);
    const IntRef orows = kb.param("oR", irows + frows - 1);
    const IntRef ocols = kb.param("oC", icols + fcols - 1);
    kb.input("in", ir * icn);
    kb.input("f", fr * fc);
    kb.output("out", orows * ocols);

    const IntRef o_row = KernelBuilder::var("oRow");
    const IntRef o_col = KernelBuilder::var("oCol");
    const IntRef f_row = KernelBuilder::var("fRow");
    const IntRef f_col = KernelBuilder::var("fCol");
    // fRT = fR-1-fRow; fCT = fC-1-fCol; iRow = oRow-fRT; iCol = oCol-fCT.
    const IntRef frt = fr - 1 - f_row;
    const IntRef fct = fc - 1 - f_col;
    const IntRef i_row = o_row - frt;
    const IntRef i_col = o_col - fct;

    kb.append(st_for(
        "oRow", ic(0), orows,
        {st_for(
            "oCol", ic(0), ocols,
            {st_for(
                "fRow", ic(0), fr,
                {st_for(
                    "fCol", ic(0), fc,
                    {st_if(i_row >= ic(0) && i_row < ir &&
                               i_col >= ic(0) && i_col < icn,
                           {st_accumulate(
                               "out", o_row * ocols + o_col,
                               KernelBuilder::load("in",
                                                   i_row * icn + i_col) *
                                   KernelBuilder::load(
                                       "f", frt * fc + fct))})})})})}));
    return kb.build();
}

Kernel
make_matmul(int n, int m, int p)
{
    KernelBuilder kb("matmul");
    const IntRef rn = kb.param("N", n);
    const IntRef rm = kb.param("M", m);
    const IntRef rp = kb.param("P", p);
    kb.input("A", rn * rm);
    kb.input("B", rm * rp);
    kb.output("C", rn * rp);
    const IntRef i = KernelBuilder::var("i");
    const IntRef j = KernelBuilder::var("j");
    const IntRef k = KernelBuilder::var("k");
    kb.append(st_for(
        "i", ic(0), rn,
        {st_for(
            "j", ic(0), rp,
            {st_for("k", ic(0), rm,
                    {st_accumulate(
                        "C", i * rp + j,
                        KernelBuilder::load("A", i * rm + k) *
                            KernelBuilder::load("B", k * rp + j))})})}));
    return kb.build();
}

Kernel
make_qprod()
{
    // Euclidean (SE(3)-style) product with quaternion rotation part:
    //   qr = q1 (*) q2           (Hamilton product, w x y z layout)
    //   tr = rot(q1, t2) + t1    (rotate then translate)
    // The rotation uses the 2-cross-product formulation:
    //   u  = 2 * (qv x t2);  tr = t2 + w*u + qv x u + t1
    KernelBuilder kb("qprod");
    kb.input("q1", ic(4));
    kb.input("t1", ic(3));
    kb.input("q2", ic(4));
    kb.input("t2", ic(3));
    kb.output("qr", ic(4));
    kb.output("tr", ic(3));
    kb.scratch("u", ic(3));

    auto q1 = [](int i) { return KernelBuilder::load("q1", ic(i)); };
    auto q2 = [](int i) { return KernelBuilder::load("q2", ic(i)); };
    auto t1 = [](int i) { return KernelBuilder::load("t1", ic(i)); };
    auto t2 = [](int i) { return KernelBuilder::load("t2", ic(i)); };
    auto u = [](int i) { return KernelBuilder::load("u", ic(i)); };

    // Hamilton product (w = idx 0).
    kb.append(st_store("qr", ic(0),
                       q1(0) * q2(0) - q1(1) * q2(1) - q1(2) * q2(2) -
                           q1(3) * q2(3)));
    kb.append(st_store("qr", ic(1),
                       q1(0) * q2(1) + q1(1) * q2(0) + q1(2) * q2(3) -
                           q1(3) * q2(2)));
    kb.append(st_store("qr", ic(2),
                       q1(0) * q2(2) - q1(1) * q2(3) + q1(2) * q2(0) +
                           q1(3) * q2(1)));
    kb.append(st_store("qr", ic(3),
                       q1(0) * q2(3) + q1(1) * q2(2) - q1(2) * q2(1) +
                           q1(3) * q2(0)));

    // u = 2 * (qv x t2), with qv = (q1[1], q1[2], q1[3]).
    kb.append(st_store(
        "u", ic(0), f_const(2) * (q1(2) * t2(2) - q1(3) * t2(1))));
    kb.append(st_store(
        "u", ic(1), f_const(2) * (q1(3) * t2(0) - q1(1) * t2(2))));
    kb.append(st_store(
        "u", ic(2), f_const(2) * (q1(1) * t2(1) - q1(2) * t2(0))));

    // tr = t2 + w*u + qv x u + t1.
    kb.append(st_store("tr", ic(0),
                       t2(0) + q1(0) * u(0) +
                           (q1(2) * u(2) - q1(3) * u(1)) + t1(0)));
    kb.append(st_store("tr", ic(1),
                       t2(1) + q1(0) * u(1) +
                           (q1(3) * u(0) - q1(1) * u(2)) + t1(1)));
    kb.append(st_store("tr", ic(2),
                       t2(2) + q1(0) * u(2) +
                           (q1(1) * u(1) - q1(2) * u(0)) + t1(2)));
    return kb.build();
}

Kernel
make_qrdecomp(int n)
{
    // Householder QR (the paper's §5.7 description: "the Householder
    // algorithm... a series of matrix multiplications along with scalar
    // computations"). A = Q*R with Q orthogonal, R upper triangular.
    KernelBuilder kb("qrdecomp");
    const IntRef rn = kb.param("n", n);
    kb.input("A", rn * rn);
    kb.output("Q", rn * rn);
    kb.output("R", rn * rn);
    kb.scratch("v", rn);
    kb.scratch("s", ic(4));  // s[0]=norm2, s[1]=alpha, s[2]=vnorm2, s[3]=t

    const IntRef i = KernelBuilder::var("i");
    const IntRef j = KernelBuilder::var("j");
    const IntRef k = KernelBuilder::var("k");
    auto A = [](IntRef idx) { return KernelBuilder::load("A", idx); };
    auto R = [](IntRef idx) { return KernelBuilder::load("R", idx); };
    auto Q = [](IntRef idx) { return KernelBuilder::load("Q", idx); };
    auto V = [](IntRef idx) { return KernelBuilder::load("v", idx); };
    auto S = [](int idx) {
        return KernelBuilder::load("s", IntExpr::constant(idx));
    };

    // R = A; Q = I.
    kb.append(st_for("i", ic(0), rn * rn,
                     {st_store("R", i, A(i))}));
    kb.append(st_for(
        "i", ic(0), rn,
        {st_for("j", ic(0), rn,
                {st_if(i == j,
                       {st_store("Q", i * rn + j, f_const(1))},
                       {st_store("Q", i * rn + j, f_const(0))})})}));

    std::vector<StmtRef> body;
    // norm2 of the k-th column tail.
    body.push_back(st_store("s", ic(0), f_const(0)));
    body.push_back(st_for(
        "i", k, rn,
        {st_accumulate("s", ic(0), R(i * rn + k) * R(i * rn + k))}));
    // alpha = -sgn(R[k][k]) * sqrt(norm2).
    body.push_back(st_store(
        "s", ic(1), f_const(0) - f_sgn(R(k * rn + k)) * f_sqrt(S(0))));
    // v = column tail; v[k] -= alpha.
    body.push_back(st_for("i", ic(0), rn,
                          {st_store("v", i, f_const(0))}));
    body.push_back(st_for("i", k, rn, {st_store("v", i, R(i * rn + k))}));
    body.push_back(st_store("v", k, R(k * rn + k) - S(1)));
    // vnorm2.
    body.push_back(st_store("s", ic(2), f_const(0)));
    body.push_back(st_for("i", k, rn,
                          {st_accumulate("s", ic(2), V(i) * V(i))}));
    // R update: for each column j >= k.
    body.push_back(st_for(
        "j", k, rn,
        {st_store("s", ic(3), f_const(0)),
         st_for("i", k, rn,
                {st_accumulate("s", ic(3), V(i) * R(i * rn + j))}),
         st_store("s", ic(3), f_const(2) * S(3) / S(2)),
         st_for("i", k, rn,
                {st_store("R", i * rn + j,
                          R(i * rn + j) - V(i) * S(3))})}));
    // Q update: Q := Q * H_k (rows of Q, columns >= k).
    body.push_back(st_for(
        "i", ic(0), rn,
        {st_store("s", ic(3), f_const(0)),
         st_for("j", k, rn,
                {st_accumulate("s", ic(3), Q(i * rn + j) * V(j))}),
         st_store("s", ic(3), f_const(2) * S(3) / S(2)),
         st_for("j", k, rn,
                {st_store("Q", i * rn + j,
                          Q(i * rn + j) - V(j) * S(3))})}));

    kb.append(st_for("k", ic(0), rn, std::move(body)));
    return kb.build();
}

std::vector<BenchmarkInstance>
table1_instances()
{
    std::vector<BenchmarkInstance> out;
    auto conv = [&out](int ir, int icl, int fr, int fc) {
        out.push_back(BenchmarkInstance{
            "2DConv",
            std::to_string(ir) + "x" + std::to_string(icl) + ", " +
                std::to_string(fr) + "x" + std::to_string(fc),
            make_conv2d(ir, icl, fr, fc)});
    };
    auto matmul = [&out](int n, int m, int p) {
        out.push_back(BenchmarkInstance{
            "MatMul",
            std::to_string(n) + "x" + std::to_string(m) + ", " +
                std::to_string(m) + "x" + std::to_string(p),
            make_matmul(n, m, p)});
    };
    // Table 1, in order.
    conv(3, 3, 2, 2);
    conv(3, 3, 3, 3);
    conv(3, 5, 3, 3);
    conv(4, 4, 3, 3);
    conv(8, 8, 3, 3);
    conv(10, 10, 2, 2);
    conv(10, 10, 3, 3);
    conv(10, 10, 4, 4);
    conv(16, 16, 2, 2);
    conv(16, 16, 3, 3);
    conv(16, 16, 4, 4);
    matmul(2, 2, 2);
    matmul(2, 3, 3);
    matmul(3, 3, 3);
    matmul(4, 4, 4);
    matmul(8, 8, 8);
    matmul(10, 10, 10);
    matmul(16, 16, 16);
    out.push_back(BenchmarkInstance{"QProd", "4, 3, 4, 3", make_qprod()});
    out.push_back(
        BenchmarkInstance{"QRDecomp", "3x3", make_qrdecomp(3)});
    out.push_back(
        BenchmarkInstance{"QRDecomp", "4x4", make_qrdecomp(4)});
    return out;
}

scalar::BufferMap
make_inputs(const scalar::Kernel& kernel, std::uint64_t seed)
{
    Rng rng(seed);
    scalar::BufferMap out;
    const bool is_qr = kernel.name == "qrdecomp";
    for (const scalar::ArrayDecl& decl :
         kernel.arrays_with_role(scalar::ArrayRole::kInput)) {
        const auto n = static_cast<std::size_t>(
            scalar::array_length(kernel, decl));
        std::vector<float> data(n);
        for (float& v : data) {
            v = rng.uniform_float(-1.0f, 1.0f);
        }
        if (is_qr && decl.name.str() == "A") {
            // Diagonal dominance keeps Householder reflections (and the
            // 1/vnorm2 divisions) well conditioned.
            const auto dim = static_cast<std::size_t>(kernel.param("n"));
            for (std::size_t d = 0; d < dim; ++d) {
                data[d * dim + d] += static_cast<float>(dim) + 1.0f;
            }
        }
        out.emplace(decl.name.str(), std::move(data));
    }
    return out;
}

}  // namespace diospyros::kernels
