/**
 * @file
 * "Nature" — the vendor DSP library substitute (paper §5.2).
 *
 * The real evaluation compares against Tensilica's Nature library:
 * hand-vectorized routines that are *generic over sizes*, so they pay
 * runtime loop control, interior/edge splitting, and scalar epilogues —
 * great on large aligned shapes, weak on the small irregular shapes the
 * paper targets ("its unrolling strategies are not amenable to cases
 * where the filter size is near but not equal to the vector width",
 * §5.4).
 *
 * This module reimplements that library style directly against the
 * simulated DSP ISA:
 *  - matmul: rows processed in vector-width column blocks with
 *    splat-scalar x row-vector MACs, plus a scalar column tail;
 *  - conv2d: the fully-overlapped interior computed with unaligned
 *    vector loads + MACs, the boundary ring with guarded scalar code.
 *
 * Like the real library (which "often restricts dimensions to multiples
 * of 4"), availability is limited: there are no Nature kernels for QProd
 * or QRDecomp, matching the missing bars in Figure 5.
 */
#pragma once

#include <optional>

#include "machine/sim.h"
#include "scalar/ast.h"
#include "scalar/interp.h"
#include "scalar/lower.h"

namespace diospyros::nature {

/** True if the library provides a routine for this kernel. */
bool supports(const scalar::Kernel& kernel);

/**
 * Builds the library routine for `kernel` against the standard
 * KernelLayout. Raises UserError if !supports(kernel).
 */
Program build_program(const scalar::Kernel& kernel,
                      const scalar::KernelLayout& layout,
                      const TargetSpec& target);

/** Lower + simulate convenience, mirroring scalar::run_baseline. */
scalar::BaselineRun run_nature(const scalar::Kernel& kernel,
                               const scalar::BufferMap& inputs,
                               const TargetSpec& target);

}  // namespace diospyros::nature
