#include "nature/nature.h"

#include <functional>

#include "support/error.h"

namespace diospyros::nature {

namespace {

/** Structured-assembly helper: counted loops with a continue label. */
class Asm {
  public:
    explicit Asm(ProgramBuilder& pb) : pb_(pb) {}

    /** Register preloaded with a constant (cached). */
    int
    constant(int value)
    {
        for (const auto& [v, r] : constants_) {
            if (v == value) {
                return r;
            }
        }
        const int reg = pb_.fresh_int();
        pb_.mov_i(reg, value);
        constants_.emplace_back(value, reg);
        return reg;
    }

    /**
     * for (i = lo; i < hi; i += step) body(i, continue_label).
     * `lo`/`hi` are registers; `hi` is re-read every iteration (generic
     * library style). Jumping to the continue label skips to i += step.
     */
    void
    for_range(int lo, int hi, int step,
              const std::function<void(int, ProgramBuilder::Label)>& body)
    {
        const int i = pb_.fresh_int();
        pb_.add_i(i, lo, 0);
        auto head = pb_.new_label();
        auto cont = pb_.new_label();
        auto end = pb_.new_label();
        pb_.bind(head);
        pb_.branch_ge(i, hi, end);
        body(i, cont);
        pb_.bind(cont);
        pb_.add_i(i, i, step);
        pb_.jump(head);
        pb_.bind(end);
    }

  private:
    ProgramBuilder& pb_;
    std::vector<std::pair<int, int>> constants_;
};

/**
 * Generic vectorized matrix multiply, the classic vendor formulation:
 * each output row is produced in vector-width column blocks by
 * splat(A[i][k]) * B[k][j..j+W) MACs, with a scalar tail for the
 * remaining columns.
 */
Program
build_matmul(const scalar::Kernel& kernel,
             const scalar::KernelLayout& layout, const TargetSpec& target)
{
    const int W = target.vector_width;
    const int a_base = layout.base_of("A");
    const int b_base = layout.base_of("B");
    const int c_base = layout.base_of("C");

    ProgramBuilder pb;
    Asm asm_(pb);

    // Runtime size registers (function arguments of the library routine).
    const int rn = pb.fresh_int();
    const int rm = pb.fresh_int();
    const int rp = pb.fresh_int();
    pb.mov_i(rn, static_cast<int>(kernel.param("N")));
    pb.mov_i(rm, static_cast<int>(kernel.param("M")));
    pb.mov_i(rp, static_cast<int>(kernel.param("P")));
    const int zero = asm_.constant(0);

    // p_vec_end = largest multiple-of-W start: loop j while j < p - W + 1.
    const int p_minus = pb.fresh_int();
    pb.add_i(p_minus, rp, 1 - W);

    asm_.for_range(zero, rn, 1, [&](int i, ProgramBuilder::Label) {
        const int row_a = pb.fresh_int();
        pb.imul(row_a, i, rm);
        const int row_c = pb.fresh_int();
        pb.imul(row_c, i, rp);

        // Vector column blocks.
        const int j_end = pb.fresh_int();
        pb.add_i(j_end, zero, 0);
        asm_.for_range(
            zero, p_minus, W, [&](int j, ProgramBuilder::Label) {
                const int acc = pb.fresh_vec();
                pb.vsplat(acc, 0.0f);
                // addr_b walks down column block: starts at j, += p.
                const int addr_b = pb.fresh_int();
                pb.add_i(addr_b, j, 0);
                const int addr_a = pb.fresh_int();
                pb.add_i(addr_a, row_a, 0);
                asm_.for_range(
                    zero, rm, 1, [&](int, ProgramBuilder::Label) {
                        const int fa = pb.fresh_float();
                        pb.fload(fa, addr_a, a_base);
                        const int va = pb.fresh_vec();
                        pb.vsplat_r(va, fa);
                        const int vb = pb.fresh_vec();
                        pb.vload(vb, addr_b, b_base);
                        pb.vmac(acc, va, vb);
                        pb.add_i(addr_a, addr_a, 1);
                        pb.iadd(addr_b, addr_b, rp);
                    });
                const int out_addr = pb.fresh_int();
                pb.iadd(out_addr, row_c, j);
                pb.vstore(out_addr, c_base, acc);
                pb.add_i(j_end, j, W);
            });

        // Scalar tail columns [j_end, p).
        asm_.for_range(j_end, rp, 1, [&](int j, ProgramBuilder::Label) {
            const int facc = pb.fresh_float();
            pb.fmov_i(facc, 0.0f);
            const int addr_a = pb.fresh_int();
            pb.add_i(addr_a, row_a, 0);
            const int addr_b = pb.fresh_int();
            pb.add_i(addr_b, j, 0);
            const int prod = pb.fresh_float();
            asm_.for_range(zero, rm, 1, [&](int, ProgramBuilder::Label) {
                const int fa = pb.fresh_float();
                const int fb = pb.fresh_float();
                pb.fload(fa, addr_a, a_base);
                pb.fload(fb, addr_b, b_base);
                pb.fbinop(Opcode::kFMul, prod, fa, fb);
                pb.fbinop(Opcode::kFAdd, facc, facc, prod);
                pb.add_i(addr_a, addr_a, 1);
                pb.iadd(addr_b, addr_b, rp);
            });
            const int out_addr = pb.fresh_int();
            pb.iadd(out_addr, row_c, j);
            pb.fstore(out_addr, c_base, facc);
        });
    });
    pb.halt();
    return pb.finish();
}

/**
 * Generic vectorized 2D convolution: the fully-overlapped interior is
 * computed in vector-width output blocks with (unaligned) vector loads
 * and splat-filter MACs; the boundary ring falls back to guarded scalar
 * code. This interior/edge split is exactly why the library version
 * struggles when the data barely exceeds the vector width (§5.4).
 */
Program
build_conv2d(const scalar::Kernel& kernel,
             const scalar::KernelLayout& layout, const TargetSpec& target)
{
    const int W = target.vector_width;
    const int in_base = layout.base_of("in");
    const int f_base = layout.base_of("f");
    const int out_base = layout.base_of("out");

    ProgramBuilder pb;
    Asm asm_(pb);

    const int ir = pb.fresh_int();
    const int icn = pb.fresh_int();
    const int fr = pb.fresh_int();
    const int fc = pb.fresh_int();
    const int orows = pb.fresh_int();
    const int ocols = pb.fresh_int();
    pb.mov_i(ir, static_cast<int>(kernel.param("iR")));
    pb.mov_i(icn, static_cast<int>(kernel.param("iC")));
    pb.mov_i(fr, static_cast<int>(kernel.param("fR")));
    pb.mov_i(fc, static_cast<int>(kernel.param("fC")));
    pb.mov_i(orows, static_cast<int>(kernel.param("oR")));
    pb.mov_i(ocols, static_cast<int>(kernel.param("oC")));
    const int zero = asm_.constant(0);

    // Interior bounds: rows [fR-1, iR), cols [fC-1, col_end) where
    // col_end is advanced by each full vector block.
    const int row_lo = pb.fresh_int();
    pb.add_i(row_lo, fr, -1);
    const int col_lo = pb.fresh_int();
    pb.add_i(col_lo, fc, -1);
    // Vector block start limit: col < iC - W + 1.
    const int col_limit = pb.fresh_int();
    pb.add_i(col_limit, icn, 1 - W);
    const int col_end = pb.fresh_int();
    pb.add_i(col_end, col_lo, 0);

    // --- Interior, vectorized. ------------------------------------------
    asm_.for_range(row_lo, ir, 1, [&](int row, ProgramBuilder::Label) {
        const int out_row = pb.fresh_int();
        pb.imul(out_row, row, ocols);
        asm_.for_range(
            col_lo, col_limit, W, [&](int col, ProgramBuilder::Label) {
                const int acc = pb.fresh_vec();
                pb.vsplat(acc, 0.0f);
                asm_.for_range(
                    zero, fr, 1, [&](int frt, ProgramBuilder::Label) {
                        // irow = row - frt.
                        const int neg = pb.fresh_int();
                        pb.imul_i(neg, frt, -1);
                        const int irow = pb.fresh_int();
                        pb.iadd(irow, row, neg);
                        const int in_row = pb.fresh_int();
                        pb.imul(in_row, irow, icn);
                        const int f_row = pb.fresh_int();
                        pb.imul(f_row, frt, fc);
                        asm_.for_range(
                            zero, fc, 1,
                            [&](int fct, ProgramBuilder::Label) {
                                const int negc = pb.fresh_int();
                                pb.imul_i(negc, fct, -1);
                                const int icol = pb.fresh_int();
                                pb.iadd(icol, col, negc);
                                const int f_addr = pb.fresh_int();
                                pb.iadd(f_addr, f_row, fct);
                                const int fv = pb.fresh_float();
                                pb.fload(fv, f_addr, f_base);
                                const int vf = pb.fresh_vec();
                                pb.vsplat_r(vf, fv);
                                const int in_addr = pb.fresh_int();
                                pb.iadd(in_addr, in_row, icol);
                                const int vin = pb.fresh_vec();
                                pb.vload(vin, in_addr, in_base);
                                pb.vmac(acc, vf, vin);
                            });
                    });
                const int out_addr = pb.fresh_int();
                pb.iadd(out_addr, out_row, col);
                pb.vstore(out_addr, out_base, acc);
                const int ce = pb.fresh_int();
                pb.add_i(ce, col, W);
                pb.add_i(col_end, ce, 0);
            });
    });

    // --- Boundary ring (plus interior column tail), scalar. --------------
    asm_.for_range(zero, orows, 1, [&](int r, ProgramBuilder::Label) {
        const int out_row = pb.fresh_int();
        pb.imul(out_row, r, ocols);
        asm_.for_range(
            zero, ocols, 1, [&](int c, ProgramBuilder::Label c_cont) {
                // Skip outputs the vector pass already produced:
                // r in [row_lo, iR) && c in [col_lo, col_end).
                auto not_covered = pb.new_label();
                pb.branch_lt(r, row_lo, not_covered);
                pb.branch_ge(r, ir, not_covered);
                pb.branch_lt(c, col_lo, not_covered);
                auto covered = pb.new_label();
                pb.branch_lt(c, col_end, covered);
                pb.jump(not_covered);
                pb.bind(covered);
                pb.jump(c_cont);
                pb.bind(not_covered);

                const int facc = pb.fresh_float();
                pb.fmov_i(facc, 0.0f);
                const int prod = pb.fresh_float();
                asm_.for_range(
                    zero, fr, 1, [&](int frt, ProgramBuilder::Label f_cont) {
                        const int neg = pb.fresh_int();
                        pb.imul_i(neg, frt, -1);
                        const int irow = pb.fresh_int();
                        pb.iadd(irow, r, neg);
                        pb.branch_lt(irow, zero, f_cont);
                        pb.branch_ge(irow, ir, f_cont);
                        const int in_row = pb.fresh_int();
                        pb.imul(in_row, irow, icn);
                        const int f_row = pb.fresh_int();
                        pb.imul(f_row, frt, fc);
                        asm_.for_range(
                            zero, fc, 1,
                            [&](int fct, ProgramBuilder::Label g_cont) {
                                const int negc = pb.fresh_int();
                                pb.imul_i(negc, fct, -1);
                                const int icol = pb.fresh_int();
                                pb.iadd(icol, c, negc);
                                pb.branch_lt(icol, zero, g_cont);
                                pb.branch_ge(icol, icn, g_cont);
                                const int fa = pb.fresh_int();
                                pb.iadd(fa, f_row, fct);
                                const int fv = pb.fresh_float();
                                pb.fload(fv, fa, f_base);
                                const int ia = pb.fresh_int();
                                pb.iadd(ia, in_row, icol);
                                const int iv = pb.fresh_float();
                                pb.fload(iv, ia, in_base);
                                pb.fbinop(Opcode::kFMul, prod, fv, iv);
                                pb.fbinop(Opcode::kFAdd, facc, facc,
                                          prod);
                            });
                    });
                const int out_addr = pb.fresh_int();
                pb.iadd(out_addr, out_row, c);
                pb.fstore(out_addr, out_base, facc);
            });
    });
    pb.halt();
    return pb.finish();
}

}  // namespace

bool
supports(const scalar::Kernel& kernel)
{
    return kernel.name == "matmul" || kernel.name == "conv2d";
}

Program
build_program(const scalar::Kernel& kernel,
              const scalar::KernelLayout& layout, const TargetSpec& target)
{
    if (kernel.name == "matmul") {
        return build_matmul(kernel, layout, target);
    }
    if (kernel.name == "conv2d") {
        return build_conv2d(kernel, layout, target);
    }
    throw UserError("the Nature substitute has no routine for kernel " +
                    kernel.name);
}

scalar::BaselineRun
run_nature(const scalar::Kernel& kernel, const scalar::BufferMap& inputs,
           const TargetSpec& target)
{
    const scalar::KernelLayout layout = scalar::KernelLayout::make(kernel);
    scalar::BaselineRun run;
    run.program = build_program(kernel, layout, target);
    Memory memory = layout.make_memory(inputs);
    Simulator sim(target);
    run.result = sim.run(run.program, memory);
    run.outputs = layout.read_outputs(memory);
    return run;
}

}  // namespace diospyros::nature
