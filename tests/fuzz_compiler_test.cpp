// Compiler fuzzing: generates random—but valid—kernels in the input
// language (nested loops, boundary guards, affine indices, accumulation,
// unary ops), compiles each through the full pipeline, and requires
//   (a) translation validation to not report a miscompile,
//   (b) the simulated output to match the reference interpreter,
//   (c) scalar-only and full configurations to agree with each other.
//
// The generator is seeded and deterministic, so any failure is
// reproducible from the test name + trial index.

#include <gtest/gtest.h>

#include "analysis/verify_vir.h"
#include "compiler/driver.h"
#include "scalar/lower.h"
#include "support/rng.h"

namespace diospyros {
namespace {

using scalar::FloatExpr;
using scalar::FloatRef;
using scalar::IntExpr;
using scalar::IntRef;
using scalar::Kernel;
using scalar::KernelBuilder;
using scalar::Stmt;
using scalar::StmtRef;

/** Random-kernel generator over a restricted, always-valid grammar. */
class KernelFuzzer {
  public:
    explicit KernelFuzzer(std::uint64_t seed) : rng_(seed) {}

    Kernel
    generate(int index)
    {
        KernelBuilder kb("fuzz" + std::to_string(index));
        in_len_ = rng_.uniform_int(4, 12);
        out_len_ = rng_.uniform_int(2, 10);
        kb.param("n", out_len_);
        kb.input("a", IntExpr::constant(in_len_));
        kb.input("b", IntExpr::constant(in_len_));
        kb.output("o", IntExpr::constant(out_len_));

        const int stmts = static_cast<int>(rng_.uniform_int(1, 3));
        for (int s = 0; s < stmts; ++s) {
            kb.append(random_loop(0));
        }
        return kb.build();
    }

    /** Random inputs sized for the generated kernel. */
    scalar::BufferMap
    inputs(std::uint64_t seed) const
    {
        Rng rng(seed);
        scalar::BufferMap out;
        for (const char* name : {"a", "b"}) {
            std::vector<float> data(static_cast<std::size_t>(in_len_));
            for (float& v : data) {
                // Positive and away from zero: the generator may emit
                // sqrt and divide.
                v = rng.uniform_float(0.5f, 2.5f);
            }
            out.emplace(name, std::move(data));
        }
        return out;
    }

  private:
    /** Affine index expression guaranteed to stay within [0, len). */
    IntRef
    bounded_index(const IntRef& var, std::int64_t trip, std::int64_t len)
    {
        // var in [0, trip): index = var + offset, offset in
        // [0, len - trip]. Loops are generated with trip <= len for every
        // array, so the offset range is never empty.
        const std::int64_t offset =
            rng_.uniform_int(0, std::max<std::int64_t>(0, len - trip));
        return var + offset;
    }

    FloatRef
    random_expr(const IntRef& var, std::int64_t trip, int depth)
    {
        const int choice =
            static_cast<int>(rng_.uniform_int(0, depth > 2 ? 2 : 7));
        auto leaf = [&]() -> FloatRef {
            const char* arr = rng_.uniform_int(0, 1) ? "a" : "b";
            return KernelBuilder::load(
                arr, bounded_index(var, trip, in_len_));
        };
        switch (choice) {
          case 0:
          case 1:
            return leaf();
          case 2:
            return scalar::f_const(rng_.uniform_int(-2, 3));
          case 3:
            return random_expr(var, trip, depth + 1) +
                   random_expr(var, trip, depth + 1);
          case 4:
            return random_expr(var, trip, depth + 1) *
                   random_expr(var, trip, depth + 1);
          case 5:
            return random_expr(var, trip, depth + 1) -
                   random_expr(var, trip, depth + 1);
          case 6:
            return -random_expr(var, trip, depth + 1);
          default:
            // sqrt over a square keeps the argument non-negative for any
            // input sign.
            {
                FloatRef e = leaf();
                return scalar::f_sqrt(e * e);
            }
        }
    }

    StmtRef
    random_loop(int depth)
    {
        // Trip count bounded by every array the body may index.
        const std::int64_t max_trip = std::min(out_len_, in_len_);
        const std::int64_t trip = rng_.uniform_int(2, max_trip);
        const std::string var = "i" + std::to_string(depth);
        const IntRef v = KernelBuilder::var(var);

        std::vector<StmtRef> body;
        const IntRef out_index = bounded_index(v, trip, out_len_);
        const FloatRef value = random_expr(v, trip, 0);
        if (rng_.uniform_int(0, 1)) {
            body.push_back(scalar::st_accumulate("o", out_index, value));
        } else {
            body.push_back(scalar::st_store("o", out_index, value));
        }
        // Optional boundary guard, like the conv kernel's.
        if (rng_.uniform_int(0, 2) == 0) {
            body = {scalar::st_if(v >= 1 && v < IntExpr::constant(trip),
                                  std::move(body))};
        }
        // Optional nested loop around an independent statement.
        if (depth == 0 && rng_.uniform_int(0, 2) == 0) {
            body.push_back(random_loop(depth + 1));
        }
        return scalar::st_for(var, IntExpr::constant(0),
                              IntExpr::constant(trip), std::move(body));
    }

    Rng rng_;
    std::int64_t in_len_ = 8;
    std::int64_t out_len_ = 8;
};

class FuzzCompiler : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCompiler, RandomKernelsCompileCorrectly)
{
    const int batch = GetParam();
    KernelFuzzer fuzzer(static_cast<std::uint64_t>(batch) * 7919 + 1);
    for (int trial = 0; trial < 8; ++trial) {
        const Kernel kernel = fuzzer.generate(batch * 100 + trial);
        const scalar::BufferMap inputs = fuzzer.inputs(
            static_cast<std::uint64_t>(batch * 100 + trial) + 5);

        CompilerOptions options;
        options.limits = RunnerLimits{.node_limit = 200'000,
                                      .iter_limit = 10,
                                      .time_limit_seconds = 10.0};
        options.validate = true;
        options.random_check = true;
        const CompiledKernel compiled = compile_kernel(kernel, options);

        ASSERT_NE(compiled.report.validation, Verdict::kNotEquivalent)
            << kernel.name;
        ASSERT_TRUE(compiled.report.random_check_passed) << kernel.name;

        // The VIR verifier must accept every program the compiler emits.
        const analysis::DiagEngine diags =
            analysis::verify_compiled_kernel(kernel, compiled.vprogram);
        ASSERT_FALSE(diags.has_errors())
            << kernel.name << "\n"
            << diags.render_text() << compiled.vprogram.to_string();
        ASSERT_EQ(compiled.vprogram.validate(), "") << kernel.name;

        const auto run = compiled.run(inputs, options.target);
        const scalar::BufferMap want =
            scalar::run_reference(kernel, inputs);
        const auto& w = want.at("o");
        const auto& g = run.outputs.at("o");
        ASSERT_EQ(g.size(), w.size()) << kernel.name;
        for (std::size_t i = 0; i < w.size(); ++i) {
            const float scale =
                std::max({1.0f, std::abs(w[i]), std::abs(g[i])});
            ASSERT_LE(std::abs(g[i] - w[i]), 2e-3f * scale)
                << kernel.name << " o[" << i << "]\n"
                << scalar::to_pseudo_c(kernel);
        }

        // Scalar-only configuration must agree with the full one.
        CompilerOptions scalar_only = options;
        scalar_only.validate = false;
        scalar_only.random_check = false;
        scalar_only.rules.enable_vector_rules = false;
        const auto run2 = compile_kernel(kernel, scalar_only)
                              .run(inputs, options.target);
        const auto& g2 = run2.outputs.at("o");
        for (std::size_t i = 0; i < w.size(); ++i) {
            const float scale =
                std::max({1.0f, std::abs(g[i]), std::abs(g2[i])});
            ASSERT_LE(std::abs(g2[i] - g[i]), 2e-3f * scale)
                << kernel.name << " scalar-only disagrees at o[" << i
                << "]";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, FuzzCompiler, ::testing::Range(0, 6));

}  // namespace
}  // namespace diospyros
