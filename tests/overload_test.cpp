// Overload-robustness tests for the compile service: admission control
// (priority classes, watermark shedding, timed submits), request
// deadlines dropped at dequeue, the negative-result cache (TTL,
// rule-set versioning, what is and is not safe to remember), the
// per-key circuit breaker (trip, open rejects, the single half-open
// probe, close-on-success), graceful drain, and lock-consistent metrics
// snapshots under concurrency (run under TSan in check.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "compiler/driver.h"
#include "service/compile_service.h"
#include "support/error.h"
#include "support/faults.h"

namespace diospyros {
namespace {

using scalar::Kernel;
using scalar::KernelBuilder;
using service::CacheOutcome;
using service::CompileService;
using service::DrainMode;
using service::DrainStats;
using service::Priority;
using service::SubmitOptions;

Kernel
vector_add_kernel(std::int64_t n)
{
    KernelBuilder kb("vadd" + std::to_string(n));
    const scalar::IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for("i", scalar::IntExpr::constant(0), size,
                             {scalar::st_store(
                                 "C", i,
                                 KernelBuilder::load("A", i) +
                                     KernelBuilder::load("B", i))}));
    return kb.build();
}

/** Loads from an undeclared array: deterministic UserError, always. */
Kernel
poison_kernel()
{
    KernelBuilder kb("bad");
    const scalar::IntRef size = kb.param("n", 4);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for(
        "i", scalar::IntExpr::constant(0), size,
        {scalar::st_store("C", i, KernelBuilder::load("Z", i))}));
    return kb.build();
}

CompilerOptions
test_options()
{
    CompilerOptions options;
    options.limits.node_limit = 200'000;
    options.limits.iter_limit = 10;
    options.limits.time_limit_seconds = 20.0;
    return options;
}

void
sleep_ms(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/**
 * A post_compile_hook gate: while `hold` is set, every compile parks
 * inside the hook, pinning its worker. `entered` counts hook entries so
 * tests can wait until the worker is provably busy.
 */
struct WorkerGate {
    std::atomic<bool> hold{true};
    std::atomic<int> entered{0};

    std::function<void(CompiledKernel&)>
    hook()
    {
        return [this](CompiledKernel&) {
            entered.fetch_add(1);
            while (hold.load()) {
                sleep_ms(1);
            }
        };
    }

    void
    wait_entered(int count)
    {
        while (entered.load() < count) {
            sleep_ms(1);
        }
    }

    void release() { hold.store(false); }
};

TEST(Overload, WatermarkShedsBatchButAdmitsInteractive)
{
    WorkerGate gate;
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.queue_capacity = 8;
    sopts.shed_watermark = 1;
    sopts.post_compile_hook = gate.hook();
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket a = svc.submit(vector_add_kernel(4), options);
    gate.wait_entered(1);  // worker now parked on A
    service::Ticket b = svc.submit(vector_add_kernel(8), options);
    // One job queued == at the watermark: batch sheds, interactive passes.
    service::Ticket shed = svc.submit(vector_add_kernel(12), options);
    EXPECT_EQ(shed.outcome(), CacheOutcome::kShed);
    EXPECT_GT(shed.retry_after_ms(), 0u);
    const CompileResult& shed_result = shed.get();
    EXPECT_FALSE(shed_result.ok);
    EXPECT_FALSE(shed_result.user_error);
    EXPECT_EQ(shed_result.failure_class, FailureClass::kOverloaded);
    EXPECT_NE(shed_result.error.find("overloaded"), std::string::npos);

    SubmitOptions interactive;
    interactive.priority = Priority::kInteractive;
    service::Ticket vip =
        svc.submit(vector_add_kernel(16), options, interactive);

    gate.release();
    EXPECT_TRUE(a.get().ok);
    EXPECT_TRUE(b.get().ok);
    EXPECT_TRUE(vip.get().ok);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.shed_overload, 1u);
    EXPECT_EQ(m.completed, m.submitted);
}

TEST(Overload, InteractiveDequeuesBeforeBackground)
{
    WorkerGate gate;
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.queue_capacity = 8;
    sopts.post_compile_hook = gate.hook();
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket a = svc.submit(vector_add_kernel(4), options);
    gate.wait_entered(1);
    SubmitOptions background;
    background.priority = Priority::kBackground;
    SubmitOptions interactive;
    interactive.priority = Priority::kInteractive;
    // Background enqueued first, interactive second; the worker must
    // still pick the interactive one first once A releases.
    service::Ticket bg =
        svc.submit(vector_add_kernel(8), options, background);
    service::Ticket fg =
        svc.submit(vector_add_kernel(12), options, interactive);
    gate.release();
    EXPECT_TRUE(a.get().ok);
    EXPECT_TRUE(fg.get().ok);
    EXPECT_TRUE(bg.get().ok);
    // Interactive waited no longer than the background job that was
    // enqueued before it.
    EXPECT_LE(fg.queue_wait_seconds(), bg.queue_wait_seconds());
}

TEST(Overload, SubmitTimeoutShedsInsteadOfBlocking)
{
    WorkerGate gate;
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.queue_capacity = 1;
    sopts.post_compile_hook = gate.hook();
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket a = svc.submit(vector_add_kernel(4), options);
    gate.wait_entered(1);
    service::Ticket b = svc.submit(vector_add_kernel(8), options);
    // Queue is now at capacity; a timed submit gives up quickly.
    service::Ticket c = svc.submit_for(vector_add_kernel(12), options,
                                       Priority::kBatch,
                                       /*submit_timeout_seconds=*/0.05);
    EXPECT_EQ(c.outcome(), CacheOutcome::kShed);
    EXPECT_GT(c.retry_after_ms(), 0u);
    EXPECT_FALSE(c.get().ok);
    // And a zero timeout sheds without waiting at all.
    service::Ticket d = svc.submit_for(vector_add_kernel(16), options,
                                       Priority::kBatch,
                                       /*submit_timeout_seconds=*/0.0);
    EXPECT_EQ(d.outcome(), CacheOutcome::kShed);

    gate.release();
    EXPECT_TRUE(a.get().ok);
    EXPECT_TRUE(b.get().ok);
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.shed_timeout, 2u);
    EXPECT_EQ(m.completed, m.submitted);
}

TEST(Overload, ExpiredRequestDroppedAtDequeueNotCompiled)
{
    WorkerGate gate;
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.queue_capacity = 8;
    sopts.post_compile_hook = gate.hook();
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket a = svc.submit(vector_add_kernel(4), options);
    gate.wait_entered(1);
    service::Ticket b = svc.submit_for(vector_add_kernel(8), options,
                                       Priority::kBatch,
                                       /*submit_timeout_seconds=*/-1.0,
                                       /*request_deadline_seconds=*/0.02);
    sleep_ms(60);  // B's deadline passes while it is still queued
    gate.release();

    const CompileResult& rb = b.get();
    EXPECT_FALSE(rb.ok);
    EXPECT_EQ(rb.failure_class, FailureClass::kExpired);
    EXPECT_EQ(b.outcome(), CacheOutcome::kExpired);
    EXPECT_TRUE(a.get().ok);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.expired_in_queue, 1u);
    EXPECT_EQ(m.misses, 1u);  // only A ever reached the compiler
    EXPECT_EQ(m.completed, m.submitted);
}

TEST(Overload, CoalescedWaiterExtendsRequestDeadline)
{
    WorkerGate gate;
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.queue_capacity = 8;
    sopts.post_compile_hook = gate.hook();
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket a = svc.submit(vector_add_kernel(4), options);
    gate.wait_entered(1);
    // B would expire while queued, but C coalesces onto it with no
    // deadline at all — the job's drop-deadline must be extended, so
    // neither waiter is cancelled.
    service::Ticket b = svc.submit_for(vector_add_kernel(8), options,
                                       Priority::kBatch, -1.0,
                                       /*request_deadline_seconds=*/0.02);
    service::Ticket c = svc.submit(vector_add_kernel(8), options);
    EXPECT_EQ(c.outcome(), CacheOutcome::kCoalesced);
    sleep_ms(60);
    gate.release();

    EXPECT_TRUE(a.get().ok);
    EXPECT_TRUE(b.get().ok);
    EXPECT_TRUE(c.get().ok);
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.expired_in_queue, 0u);
    EXPECT_EQ(m.coalesced, 1u);
}

TEST(Overload, NegativeCacheServesRememberedUserError)
{
    CompileService::Options sopts;
    sopts.breaker_threshold = 0;  // isolate the negative cache
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket first = svc.submit(poison_kernel(), options);
    const CompileResult& r1 = first.get();
    ASSERT_FALSE(r1.ok);
    EXPECT_TRUE(r1.user_error);
    EXPECT_EQ(r1.failure_class, FailureClass::kUser);

    service::Ticket second = svc.submit(poison_kernel(), options);
    const CompileResult& r2 = second.get();
    EXPECT_EQ(second.outcome(), CacheOutcome::kNegativeHit);
    EXPECT_FALSE(r2.ok);
    EXPECT_TRUE(r2.user_error);
    EXPECT_EQ(r2.error, r1.error);  // the remembered failure, verbatim

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.misses, 1u);  // compiled exactly once
    EXPECT_EQ(m.negative_hits, 1u);
    EXPECT_EQ(m.negative_insertions, 1u);
}

TEST(Overload, NegativeTtlExpiryRecompiles)
{
    CompileService::Options sopts;
    sopts.negative_ttl_seconds = 0.05;
    sopts.breaker_threshold = 0;
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    EXPECT_FALSE(svc.submit(poison_kernel(), options).get().ok);
    sleep_ms(80);  // TTL passes
    service::Ticket again = svc.submit(poison_kernel(), options);
    EXPECT_FALSE(again.get().ok);
    EXPECT_NE(again.outcome(), CacheOutcome::kNegativeHit);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.misses, 2u);  // recompiled after expiry
    EXPECT_EQ(m.negative_hits, 0u);
}

TEST(Overload, RuleSetVersionBumpInvalidatesNegativeEntries)
{
    CompileService::Options sopts;
    sopts.breaker_threshold = 0;
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    EXPECT_FALSE(svc.submit(poison_kernel(), options).get().ok);
    svc.advance_rule_set_version(service::kRuleSetVersion + 1);
    service::Ticket again = svc.submit(poison_kernel(), options);
    EXPECT_FALSE(again.get().ok);
    EXPECT_NE(again.outcome(), CacheOutcome::kNegativeHit);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.misses, 2u);
    EXPECT_EQ(m.negative_invalidated, 1u);
}

TEST(Overload, TransientFailuresAreNeverNegativelyCached)
{
    // The hook fails the first compile with an *internal* error; the
    // second submit must recompile (and succeed), not serve the failure.
    std::atomic<int> compiles{0};
    CompileService::Options sopts;
    sopts.post_compile_hook = [&](CompiledKernel&) {
        if (compiles.fetch_add(1) == 0) {
            throw std::runtime_error("transient environmental failure");
        }
    };
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket first = svc.submit(vector_add_kernel(4), options);
    const CompileResult& r1 = first.get();
    ASSERT_FALSE(r1.ok);
    EXPECT_EQ(r1.failure_class, FailureClass::kInternal);

    service::Ticket second = svc.submit(vector_add_kernel(4), options);
    EXPECT_TRUE(second.get().ok);
    EXPECT_NE(second.outcome(), CacheOutcome::kNegativeHit);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.negative_hits, 0u);
    EXPECT_EQ(m.negative_insertions, 0u);
}

TEST(Overload, FaultArmedRequestsBypassFailureMemory)
{
    // Injected faults bypass both cache levels *and* the failure
    // memory: a fault-armed request can neither poison nor be served by
    // the negative cache.
    CompileService svc;
    CompilerOptions faulty = test_options();
    faulty.fault_specs = {"runner.iter:1:*"};
    service::Ticket t = svc.submit(vector_add_kernel(4), faulty);
    EXPECT_EQ(t.outcome(), CacheOutcome::kBypass);
    const CompileResult& r = t.get();
    EXPECT_TRUE(r.ok);  // the degradation ladder absorbs the fault
    EXPECT_GT(r.fallback_level, 0);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.negative_insertions, 0u);
    EXPECT_EQ(m.negative_hits, 0u);
}

TEST(Overload, BreakerTripsRejectsAndAdmitsSingleProbe)
{
    std::atomic<int> compiles{0};
    std::atomic<bool> fail{true};
    WorkerGate probe_gate;
    probe_gate.hold.store(false);  // armed later, for the probe only
    CompileService::Options sopts;
    sopts.negative_ttl_seconds = 0.01;  // short TTL so failures repeat
    sopts.breaker_threshold = 2;
    sopts.breaker_backoff_seconds = 0.1;
    sopts.post_compile_hook = [&](CompiledKernel& ck) {
        compiles.fetch_add(1);
        if (fail.load()) {
            throw UserError("synthetic deterministic failure");
        }
        probe_gate.hook()(ck);
    };
    CompileService svc(sopts);
    const CompilerOptions options = test_options();
    const Kernel kernel = vector_add_kernel(4);

    // Failure 1 inserts the entry; after the TTL, failure 2 trips the
    // breaker (threshold 2).
    EXPECT_FALSE(svc.submit(kernel, options).get().ok);
    sleep_ms(30);
    EXPECT_FALSE(svc.submit(kernel, options).get().ok);
    ASSERT_EQ(compiles.load(), 2);

    // Open: submits short-circuit without compiling.
    service::Ticket rejected = svc.submit(kernel, options);
    EXPECT_EQ(rejected.outcome(), CacheOutcome::kBreakerOpen);
    EXPECT_GT(rejected.retry_after_ms(), 0u);
    const CompileResult& rr = rejected.get();
    EXPECT_FALSE(rr.ok);
    EXPECT_EQ(rr.failure_class, FailureClass::kOverloaded);
    EXPECT_EQ(compiles.load(), 2);

    // After the backoff the breaker half-opens: exactly one probe is
    // admitted; a concurrent submit is still rejected.
    fail.store(false);
    probe_gate.hold.store(true);
    sleep_ms(150);
    service::Ticket probe = svc.submit(kernel, options);
    probe_gate.wait_entered(1);  // probe is compiling (parked in hook)
    service::Ticket during = svc.submit(kernel, options);
    EXPECT_EQ(during.outcome(), CacheOutcome::kBreakerOpen);
    probe_gate.release();

    EXPECT_TRUE(probe.get().ok);  // the probe heals the key
    EXPECT_FALSE(during.get().ok);
    service::Ticket after = svc.submit(kernel, options);
    EXPECT_TRUE(after.get().ok);
    EXPECT_EQ(after.outcome(), CacheOutcome::kMemoryHit);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.breaker_trips, 1u);
    EXPECT_EQ(m.breaker_open_rejects, 2u);
    EXPECT_EQ(m.breaker_probes, 1u);
    EXPECT_EQ(m.breaker_closes, 1u);
    EXPECT_EQ(m.completed, m.submitted);
}

TEST(Overload, DrainShedShedsQueuedAndRejectsLaterSubmits)
{
    WorkerGate gate;
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.queue_capacity = 8;
    sopts.post_compile_hook = gate.hook();
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket a = svc.submit(vector_add_kernel(4), options);
    gate.wait_entered(1);
    service::Ticket b = svc.submit(vector_add_kernel(8), options);
    service::Ticket c = svc.submit(vector_add_kernel(12), options);

    std::thread releaser([&] {
        sleep_ms(30);
        gate.release();
    });
    const DrainStats stats = svc.drain(DrainMode::kShed);
    releaser.join();

    EXPECT_EQ(stats.shed, 2u);
    EXPECT_EQ(stats.finished, 0u);
    EXPECT_TRUE(a.get().ok);  // already executing: allowed to finish
    EXPECT_FALSE(b.get().ok);
    EXPECT_FALSE(c.get().ok);
    EXPECT_EQ(b.outcome(), CacheOutcome::kShed);
    EXPECT_TRUE(svc.draining());

    // Admission is closed for good.
    service::Ticket late = svc.submit(vector_add_kernel(16), options);
    EXPECT_EQ(late.outcome(), CacheOutcome::kShed);
    EXPECT_FALSE(late.get().ok);

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.drain_shed, 2u);
    EXPECT_EQ(m.shed_draining, 1u);
    EXPECT_EQ(m.completed, m.submitted);
}

TEST(Overload, DrainFinishCompletesQueuedWork)
{
    WorkerGate gate;
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.queue_capacity = 8;
    sopts.post_compile_hook = gate.hook();
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    service::Ticket a = svc.submit(vector_add_kernel(4), options);
    gate.wait_entered(1);
    service::Ticket b = svc.submit(vector_add_kernel(8), options);
    service::Ticket c = svc.submit(vector_add_kernel(12), options);

    std::thread releaser([&] {
        sleep_ms(30);
        gate.release();
    });
    const DrainStats stats = svc.drain(DrainMode::kFinish);
    releaser.join();

    EXPECT_EQ(stats.finished, 2u);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_TRUE(a.get().ok);
    EXPECT_TRUE(b.get().ok);
    EXPECT_TRUE(c.get().ok);
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.drain_finished, 2u);
    EXPECT_EQ(m.completed, m.submitted);
}

TEST(Overload, MetricsSnapshotIsConsistentUnderConcurrency)
{
    // Hammer submits from several threads while another thread renders
    // JSON snapshots. TSan (check.sh gate) proves the snapshot locking;
    // the assertions prove the counters add up afterwards.
    CompileService::Options sopts;
    sopts.jobs = 2;
    sopts.queue_capacity = 64;
    CompileService svc(sopts);
    const CompilerOptions options = test_options();

    std::atomic<bool> stop{false};
    std::thread snapshotter([&] {
        while (!stop.load()) {
            const std::string json = svc.metrics().to_json();
            EXPECT_EQ(json.front(), '{');
            EXPECT_EQ(json.back(), '}');
            sleep_ms(1);
        }
    });

    std::vector<std::thread> clients;
    std::atomic<int> ok_count{0};
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < 8; ++i) {
                service::Ticket ticket = svc.submit(
                    vector_add_kernel(4 + 4 * ((t * 8 + i) % 6)),
                    test_options());
                if (ticket.get().ok) {
                    ok_count.fetch_add(1);
                }
            }
        });
    }
    for (std::thread& c : clients) {
        c.join();
    }
    stop.store(true);
    snapshotter.join();

    EXPECT_EQ(ok_count.load(), 24);
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.submitted, 24u);
    // Coalesced submits resolve from the owner's future and are never
    // separately "completed"; everything else must be.
    EXPECT_EQ(m.completed + m.coalesced, 24u);
    EXPECT_EQ(m.queue_depth, 0u);
}

TEST(Overload, PriorityNamesRoundTrip)
{
    EXPECT_EQ(service::parse_priority("interactive"),
              Priority::kInteractive);
    EXPECT_EQ(service::parse_priority("batch"), Priority::kBatch);
    EXPECT_EQ(service::parse_priority("background"),
              Priority::kBackground);
    EXPECT_STREQ(service::priority_name(Priority::kBackground),
                 "background");
    EXPECT_THROW(service::parse_priority("urgent"), UserError);
}

TEST(Overload, MetricsJsonCarriesOverloadCounters)
{
    CompileService svc;
    EXPECT_FALSE(svc.submit(poison_kernel(), test_options()).get().ok);
    const std::string json = svc.metrics().to_json();
    EXPECT_NE(json.find("\"shed_overload\":0"), std::string::npos);
    EXPECT_NE(json.find("\"negative_insertions\":1"), std::string::npos);
    EXPECT_NE(json.find("\"breaker_trips\":0"), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"expired_in_queue\":0"), std::string::npos);
}

}  // namespace
}  // namespace diospyros
