// Tests for the SFM application case study: stage kernels, end-to-end
// correctness against the host reference, and the §5.7 performance claim
// (swapping the QR hot spot for the Diospyros kernel speeds up the whole
// pipeline).

#include <gtest/gtest.h>

#include "linalg/decompose.h"
#include "sfm/sfm.h"
#include "support/rng.h"

namespace diospyros::sfm {
namespace {

using linalg::Mat3;
using linalg::Mat34;
using linalg::Quaternion;
using linalg::Vec3;

Mat34
random_projection(Rng& rng)
{
    Mat3 k;
    k(0, 0) = rng.uniform_float(0.8f, 2.5f);
    k(1, 1) = rng.uniform_float(0.8f, 2.5f);
    k(2, 2) = 1.0f;
    k(0, 1) = rng.uniform_float(-0.1f, 0.1f);
    k(0, 2) = rng.uniform_float(-0.5f, 0.5f);
    k(1, 2) = rng.uniform_float(-0.5f, 0.5f);
    Quaternion q{rng.uniform_float(-1, 1), rng.uniform_float(-1, 1),
                 rng.uniform_float(-1, 1), rng.uniform_float(-1, 1)};
    const float n = q.norm();
    q.w /= n;
    q.x /= n;
    q.y /= n;
    q.z /= n;
    Mat3 r;
    for (int c = 0; c < 3; ++c) {
        Vec3 e;
        e(c, 0) = 1.0f;
        const Vec3 col = q.rotate(e);
        for (int rr = 0; rr < 3; ++rr) {
            r(rr, c) = col(rr, 0);
        }
    }
    Vec3 center;
    for (int i = 0; i < 3; ++i) {
        center(i, 0) = rng.uniform_float(-3, 3);
    }
    return linalg::compose_projection(k, r, center);
}

TEST(StageKernels, SignfixBehaviour)
{
    const scalar::Kernel kernel = make_signfix_kernel();
    // Kp with a negative middle diagonal; Rp = identity.
    const std::vector<float> kp = {2, 1, 1, 0, -4, 1, 0, 0, 2};
    const std::vector<float> rp = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    const auto out =
        scalar::run_reference(kernel, {{"Kp", kp}, {"Rp", rp}});
    // s = Kp22 * d2 = 2; K22 must normalize to 1; column 1 flipped.
    EXPECT_FLOAT_EQ(out.at("s")[0], 2.0f);
    EXPECT_FLOAT_EQ(out.at("K")[8], 1.0f);
    EXPECT_FLOAT_EQ(out.at("K")[4], 2.0f);   // -4 * -1 / 2
    EXPECT_FLOAT_EQ(out.at("K")[1], -0.5f);  // 1 * -1 / 2
    EXPECT_FLOAT_EQ(out.at("R")[4], -1.0f);  // row 1 flipped
    EXPECT_FLOAT_EQ(out.at("R")[0], 1.0f);
}

TEST(StageKernels, CenterSolvesUpperTriangularSystem)
{
    const scalar::Kernel kernel = make_center_kernel();
    // K = I (normalized), R = I, s = 1: c = -p4.
    const std::vector<float> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    const auto out = scalar::run_reference(
        kernel,
        {{"K", eye}, {"R", eye}, {"p4", {1, 2, 3}}, {"s", {1}}});
    EXPECT_FLOAT_EQ(out.at("c")[0], -1.0f);
    EXPECT_FLOAT_EQ(out.at("c")[1], -2.0f);
    EXPECT_FLOAT_EQ(out.at("c")[2], -3.0f);
}

class PipelineTest : public ::testing::TestWithParam<QrImpl> {};

TEST_P(PipelineTest, MatchesHostReference)
{
    Rng rng(77);
    const TargetSpec target = TargetSpec::fusion_g3_like();
    const ProjectionPipeline pipeline(GetParam(), target);
    for (int trial = 0; trial < 5; ++trial) {
        const Mat34 p = random_projection(rng);
        const AppResult result = pipeline.run(p);
        const linalg::ProjectionDecomposition want =
            linalg::decompose_projection(p);
        EXPECT_LT(result.decomposition.calibration.max_abs_diff(
                      want.calibration),
                  2e-3f)
            << "trial " << trial;
        EXPECT_LT(
            result.decomposition.rotation.max_abs_diff(want.rotation),
            2e-3f)
            << "trial " << trial;
        EXPECT_LT(result.decomposition.center.max_abs_diff(want.center),
                  1e-2f)
            << "trial " << trial;
        EXPECT_GT(result.cycles.total(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Impls, PipelineTest,
                         ::testing::Values(QrImpl::kEigenLike,
                                           QrImpl::kDiospyros),
                         [](const auto& info) {
                             return info.param == QrImpl::kEigenLike
                                        ? "EigenLike"
                                        : "Diospyros";
                         });

TEST(Pipeline, QrDominatesBaselineRuntime)
{
    // §5.7: "61% of the run time was spent on a call to a 3x3 QR
    // decomposition" — the baseline pipeline must be QR-dominated.
    Rng rng(5);
    const ProjectionPipeline pipeline(QrImpl::kEigenLike,
                                      TargetSpec::fusion_g3_like());
    const AppResult result = pipeline.run(random_projection(rng));
    EXPECT_GT(result.cycles.qr_share(), 0.5);
    EXPECT_LT(result.cycles.qr_share(), 0.9);
}

TEST(Pipeline, DiospyrosKernelSpeedsUpWholeApplication)
{
    // §5.7: swapping in the Diospyros QR gives an end-to-end win (the
    // paper reports 2.1x).
    Rng rng(6);
    const TargetSpec target = TargetSpec::fusion_g3_like();
    const Mat34 p = random_projection(rng);

    const ProjectionPipeline base(QrImpl::kEigenLike, target);
    const ProjectionPipeline fast(QrImpl::kDiospyros, target);
    const AppResult base_result = base.run(p);
    const AppResult fast_result = fast.run(p);

    EXPECT_LT(fast_result.cycles.qr, base_result.cycles.qr);
    EXPECT_LT(fast_result.cycles.total(), base_result.cycles.total());
    // Non-QR stages are untouched.
    EXPECT_EQ(fast_result.cycles.signfix, base_result.cycles.signfix);
    EXPECT_EQ(fast_result.cycles.center, base_result.cycles.center);
}

}  // namespace
}  // namespace diospyros::sfm
