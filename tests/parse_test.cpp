// Tests for the textual kernel frontend: grammar coverage, equivalence
// with builder-constructed kernels, and error reporting.

#include <gtest/gtest.h>

#include "compiler/driver.h"
#include "kernels/kernels.h"
#include "scalar/parse.h"
#include "scalar/symbolic.h"

namespace diospyros::scalar {
namespace {

TEST(ParseKernel, VectorAddRoundTrip)
{
    const Kernel k = parse_kernel(R"(
        (kernel vector-add
          (param n 4)
          (input A n) (input B n) (output C n)
          (for i 0 n
            (store C i (+ (load A i) (load B i))))))");
    EXPECT_EQ(k.name, "vector-add");
    EXPECT_EQ(k.param("n"), 4);
    const BufferMap out = run_reference(
        k, {{"A", {1, 2, 3, 4}}, {"B", {10, 20, 30, 40}}});
    EXPECT_EQ(out.at("C"), (std::vector<float>{11, 22, 33, 44}));
}

TEST(ParseKernel, AccumulateDesugarsToLoadAdd)
{
    const Kernel k = parse_kernel(R"(
        (kernel acc
          (input a 3) (output o 1)
          (for i 0 3 (accumulate o 0 (load a i)))))");
    const BufferMap out = run_reference(k, {{"a", {1, 2, 4}}});
    EXPECT_EQ(out.at("o"), (std::vector<float>{7}));
}

TEST(ParseKernel, VariadicOperatorsFoldLeft)
{
    const Kernel k = parse_kernel(R"(
        (kernel fold
          (input a 4) (output o 1)
          (store o 0 (+ (load a 0) (load a 1) (load a 2) (load a 3)))))");
    const BufferMap out = run_reference(k, {{"a", {1, 2, 3, 4}}});
    EXPECT_EQ(out.at("o"), (std::vector<float>{10}));
}

TEST(ParseKernel, RationalLiteralsAndUnaryOps)
{
    const Kernel k = parse_kernel(R"(
        (kernel mixed
          (input a 2) (output o 3)
          (store o 0 (* (load a 0) 1/2))
          (store o 1 (sqrt (load a 1)))
          (store o 2 (sgn (neg (load a 0))))))");
    const BufferMap out = run_reference(k, {{"a", {3, 16}}});
    EXPECT_FLOAT_EQ(out.at("o")[0], 1.5f);
    EXPECT_FLOAT_EQ(out.at("o")[1], 4.0f);
    EXPECT_FLOAT_EQ(out.at("o")[2], -1.0f);
}

TEST(ParseKernel, IfAndIfElse)
{
    const Kernel k = parse_kernel(R"(
        (kernel guards
          (param n 4)
          (input a n) (output o n)
          (for i 0 n
            (if-else (or (== i 0) (== i (- n 1)))
              (then (store o i 0))
              (else (store o i (load a i)))))))");
    const BufferMap out = run_reference(k, {{"a", {5, 6, 7, 8}}});
    EXPECT_EQ(out.at("o"), (std::vector<float>{0, 6, 7, 0}));
}

TEST(ParseKernel, TextualConvMatchesBuilderConv)
{
    // The shipped conv2d_3x5_3x3.ksp source must lift to exactly the same
    // specification as the C++ builder version.
    const Kernel text = parse_kernel_file(
        std::string(DIOS_SOURCE_DIR) + "/tools/kernels/conv2d_3x5_3x3.ksp");
    const Kernel built = kernels::make_conv2d(3, 5, 3, 3);
    const LiftedSpec a = lift(text);
    const LiftedSpec b = lift(built);
    EXPECT_TRUE(Term::equal(a.spec, b.spec));
}

TEST(ParseKernel, ParsedKernelsCompile)
{
    const Kernel k = parse_kernel(R"(
        (kernel scaled-add
          (param n 8)
          (input A n) (input B n) (output C n)
          (for i 0 n
            (store C i (+ (* (load A i) 2) (load B i))))))");
    CompilerOptions options;
    options.validate = true;
    const CompiledKernel compiled = compile_kernel(k, options);
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);
    const auto run = compiled.run(
        {{"A", {1, 2, 3, 4, 5, 6, 7, 8}},
         {"B", {1, 1, 1, 1, 1, 1, 1, 1}}},
        TargetSpec::fusion_g3_like());
    EXPECT_EQ(run.outputs.at("C"),
              (std::vector<float>{3, 5, 7, 9, 11, 13, 15, 17}));
}

TEST(ParseKernel, UserFunctionCalls)
{
    const Kernel k = parse_kernel(R"(
        (kernel with-call
          (input a 2) (output o 1)
          (store o 0 (call square (+ (load a 0) (load a 1))))))");
    FunctionMap fns;
    fns.emplace("square",
                [](std::span<const float> args) {
                    return args[0] * args[0];
                });
    const BufferMap out = run_reference(k, {{"a", {2, 3}}}, fns);
    EXPECT_FLOAT_EQ(out.at("o")[0], 25.0f);
}

TEST(ParseKernel, Comments)
{
    const Kernel k = parse_kernel(R"(
        ; header comment
        (kernel c (input a 1) (output o 1)
          (store o 0 (load a 0)) ; trailing
        ))");
    EXPECT_EQ(k.name, "c");
}

TEST(ParseKernel, ErrorsAreDescriptive)
{
    auto expect_error = [](const char* src, const char* fragment) {
        try {
            parse_kernel(src);
            FAIL() << "expected parse error for: " << src;
        } catch (const UserError& e) {
            EXPECT_NE(std::string(e.what()).find(fragment),
                      std::string::npos)
                << e.what();
        }
    };
    expect_error("(module x)", "kernel");
    expect_error("(kernel k (store o 0 1))", "undeclared");
    expect_error("(kernel k (output o 1) (store o 0 (load)))",
                 "malformed float expression");
    expect_error("(kernel k (output o 1) (store o 0 (% 1 2)))",
                 "unknown float operator");
    expect_error("(kernel k (output o 1) (frob o))", "unknown statement");
    expect_error("(kernel k (output o 1) (if (< 1) (store o 0 1)))",
                 "comparison takes two operands");
    expect_error("(kernel k (output o 1) (store o 0 x))",
                 "bare variables");
}

TEST(ParseKernel, MissingFileThrows)
{
    EXPECT_THROW(parse_kernel_file("/nonexistent/path.ksp"), UserError);
}

}  // namespace
}  // namespace diospyros::scalar
