// Tests for the benchmark kernel definitions: reference semantics
// (against hand-computed or mathematical properties), lifting sanity,
// and the Table 1 instance list.

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/kernels.h"
#include "scalar/symbolic.h"

namespace diospyros::kernels {
namespace {

using scalar::BufferMap;

TEST(Conv2d, MatchesHandComputedFullConvolution)
{
    // 2x2 input, 2x2 filter -> 3x3 "full" output.
    const scalar::Kernel k = make_conv2d(2, 2, 2, 2);
    const BufferMap out = scalar::run_reference(
        k, {{"in", {1, 2, 3, 4}}, {"f", {10, 20, 30, 40}}});
    // Full convolution of [[1,2],[3,4]] with [[10,20],[30,40]]:
    const std::vector<float> expected = {10, 40,  40, 60,  200, 160,
                                         90, 240, 160};
    ASSERT_EQ(out.at("out").size(), 9u);
    for (int i = 0; i < 9; ++i) {
        EXPECT_FLOAT_EQ(out.at("out")[static_cast<std::size_t>(i)],
                        expected[static_cast<std::size_t>(i)])
            << "at " << i;
    }
}

TEST(Conv2d, IdentityFilterIsIdentity)
{
    // 1x1 filter of value 1: output == input.
    const scalar::Kernel k = make_conv2d(3, 3, 1, 1);
    const std::vector<float> input = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    const BufferMap out =
        scalar::run_reference(k, {{"in", input}, {"f", {1}}});
    EXPECT_EQ(out.at("out"), input);
}

TEST(Conv2d, PaperSizeShapes)
{
    // The §2 example: 3x5 input, 3x3 filter -> 5x7 output.
    const scalar::Kernel k = make_conv2d(3, 5, 3, 3);
    EXPECT_EQ(scalar::array_length(k, k.array("out")), 35);
    const scalar::LiftedSpec spec = scalar::lift(k);
    EXPECT_EQ(spec.total_outputs, 35);
    // The corner element touches exactly one product; interior elements
    // touch up to 9 — irregularity is the point of this benchmark.
}

TEST(MatMul, MatchesHandComputed)
{
    const scalar::Kernel k = make_matmul(2, 3, 2);
    // A = [[1,2,3],[4,5,6]], B = [[7,8],[9,10],[11,12]].
    const BufferMap out = scalar::run_reference(
        k, {{"A", {1, 2, 3, 4, 5, 6}}, {"B", {7, 8, 9, 10, 11, 12}}});
    EXPECT_EQ(out.at("C"), (std::vector<float>{58, 64, 139, 154}));
}

TEST(QProd, IdentityQuaternionActsAsTranslation)
{
    const scalar::Kernel k = make_qprod();
    // q1 = identity rotation, t1 = (1,2,3); q2 arbitrary, t2 = (4,5,6).
    const BufferMap out = scalar::run_reference(
        k, {{"q1", {1, 0, 0, 0}},
            {"t1", {1, 2, 3}},
            {"q2", {0.5f, 0.5f, 0.5f, 0.5f}},
            {"t2", {4, 5, 6}}});
    // qr = q2 (identity product); tr = t2 + t1.
    EXPECT_EQ(out.at("qr"),
              (std::vector<float>{0.5f, 0.5f, 0.5f, 0.5f}));
    EXPECT_EQ(out.at("tr"), (std::vector<float>{5, 7, 9}));
}

TEST(QProd, NinetyDegreeRotationAboutZ)
{
    // q = (cos45, 0, 0, sin45): rotate (1, 0, 0) -> (0, 1, 0).
    const float c = std::sqrt(0.5f);
    const scalar::Kernel k = make_qprod();
    const BufferMap out = scalar::run_reference(
        k, {{"q1", {c, 0, 0, c}},
            {"t1", {0, 0, 0}},
            {"q2", {1, 0, 0, 0}},
            {"t2", {1, 0, 0}}});
    EXPECT_NEAR(out.at("tr")[0], 0.0f, 1e-5f);
    EXPECT_NEAR(out.at("tr")[1], 1.0f, 1e-5f);
    EXPECT_NEAR(out.at("tr")[2], 0.0f, 1e-5f);
}

TEST(QProd, ProductOfUnitQuaternionsIsUnit)
{
    const scalar::Kernel k = make_qprod();
    const BufferMap inputs = make_inputs(k, 7);
    // Normalize the random quaternions first.
    BufferMap normalized = inputs;
    for (const char* name : {"q1", "q2"}) {
        auto& q = normalized.at(name);
        float norm = 0;
        for (const float v : q) {
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (float& v : q) {
            v /= norm;
        }
    }
    const BufferMap out = scalar::run_reference(k, normalized);
    float norm = 0;
    for (const float v : out.at("qr")) {
        norm += v * v;
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0f, 1e-5f);
}

class QrTest : public ::testing::TestWithParam<int> {};

TEST_P(QrTest, DecompositionPropertiesHold)
{
    const int n = GetParam();
    const scalar::Kernel k = make_qrdecomp(n);
    const BufferMap inputs = make_inputs(k, 42);
    const BufferMap out = scalar::run_reference(k, inputs);
    const auto& q = out.at("Q");
    const auto& r = out.at("R");
    const auto& a = inputs.at("A");
    const auto at = [n](const std::vector<float>& m, int i, int j) {
        return m[static_cast<std::size_t>(i * n + j)];
    };

    // R is upper triangular.
    for (int i = 1; i < n; ++i) {
        for (int j = 0; j < i; ++j) {
            EXPECT_NEAR(at(r, i, j), 0.0f, 2e-4f)
                << "R[" << i << "][" << j << "]";
        }
    }
    // Q^T Q = I.
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            float dot = 0;
            for (int l = 0; l < n; ++l) {
                dot += at(q, l, i) * at(q, l, j);
            }
            EXPECT_NEAR(dot, i == j ? 1.0f : 0.0f, 2e-4f)
                << "QtQ[" << i << "][" << j << "]";
        }
    }
    // Q * R = A.
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            float dot = 0;
            for (int l = 0; l < n; ++l) {
                dot += at(q, i, l) * at(r, l, j);
            }
            EXPECT_NEAR(dot, at(a, i, j), 2e-3f)
                << "QR[" << i << "][" << j << "]";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrTest, ::testing::Values(2, 3, 4, 5));

TEST(Table1, HasTwentyOneInstancesInPaperOrder)
{
    const auto instances = table1_instances();
    ASSERT_EQ(instances.size(), 21u);
    EXPECT_EQ(instances[0].label(), "2DConv 3x3, 2x2");
    EXPECT_EQ(instances[2].label(), "2DConv 3x5, 3x3");
    EXPECT_EQ(instances[11].label(), "MatMul 2x2, 2x2");
    EXPECT_EQ(instances[12].label(), "MatMul 2x3, 3x3");
    EXPECT_EQ(instances[18].label(), "QProd 4, 3, 4, 3");
    EXPECT_EQ(instances[20].label(), "QRDecomp 4x4");
    int conv = 0, mm = 0;
    for (const auto& inst : instances) {
        conv += inst.suite == "2DConv";
        mm += inst.suite == "MatMul";
    }
    EXPECT_EQ(conv, 11);
    EXPECT_EQ(mm, 7);
}

TEST(Table1, AllInstancesLiftWithExpectedOutputCounts)
{
    for (const auto& inst : table1_instances()) {
        // Lift only the small/medium sizes here (the huge ones are
        // exercised by the benches).
        std::int64_t total = 0;
        for (const auto& decl :
             inst.kernel.arrays_with_role(scalar::ArrayRole::kOutput)) {
            total += scalar::array_length(inst.kernel, decl);
        }
        if (total > 200) {
            continue;
        }
        const scalar::LiftedSpec spec = scalar::lift(inst.kernel);
        EXPECT_EQ(spec.total_outputs, total) << inst.label();
    }
}

TEST(MakeInputs, IsDeterministicPerSeed)
{
    const scalar::Kernel k = make_matmul(3, 3, 3);
    EXPECT_EQ(make_inputs(k, 5).at("A"), make_inputs(k, 5).at("A"));
    EXPECT_NE(make_inputs(k, 5).at("A"), make_inputs(k, 6).at("A"));
}

}  // namespace
}  // namespace diospyros::kernels
