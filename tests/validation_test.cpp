// Tests for translation validation: devectorization, canonical-polynomial
// equivalence, overflow fallback, and the randomized differential tester.

#include <gtest/gtest.h>

#include "validation/validate.h"

namespace diospyros {
namespace {

TEST(Devectorize, FlattensStructure)
{
    const auto v = devectorize(Term::parse(
        "(List (Concat (Vec 1 2) (Vec (Get a 0) 4)) (Get a 1))"));
    ASSERT_EQ(v.size(), 5u);
    EXPECT_EQ(Term::to_string(v[2]), "(Get a 0)");
    EXPECT_EQ(Term::to_string(v[4]), "(Get a 1)");
}

TEST(Devectorize, DistributesLaneWiseOps)
{
    const auto v = devectorize(Term::parse(
        "(VecMAC (Vec (Get o 0) (Get o 1)) (Vec (Get a 0) (Get a 1)) (Vec "
        "(Get b 0) (Get b 1)))"));
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(Term::to_string(v[0]),
              "(+ (Get o 0) (* (Get a 0) (Get b 0)))");
    EXPECT_EQ(Term::to_string(v[1]),
              "(+ (Get o 1) (* (Get a 1) (Get b 1)))");
}

TEST(ScalarEquivalence, DecidesAcIdentities)
{
    auto eq = [](const char* a, const char* b) {
        return scalar_equivalent(Term::parse(a), Term::parse(b));
    };
    // Commutativity and associativity.
    EXPECT_EQ(eq("(+ (Get a 0) (Get a 1))", "(+ (Get a 1) (Get a 0))"),
              Verdict::kEquivalent);
    EXPECT_EQ(eq("(* (+ (Get a 0) (Get a 1)) (Get a 2))",
                 "(+ (* (Get a 2) (Get a 0)) (* (Get a 1) (Get a 2)))"),
              Verdict::kEquivalent);
    // Identities.
    EXPECT_EQ(eq("(+ (Get a 0) 0)", "(Get a 0)"), Verdict::kEquivalent);
    EXPECT_EQ(eq("(* (Get a 0) 1)", "(Get a 0)"), Verdict::kEquivalent);
    EXPECT_EQ(eq("(- (Get a 0) (Get a 0))", "0"), Verdict::kEquivalent);
    EXPECT_EQ(eq("(neg (neg (Get a 0)))", "(Get a 0)"),
              Verdict::kEquivalent);
    // Non-equivalences.
    EXPECT_EQ(eq("(+ (Get a 0) (Get a 1))", "(+ (Get a 0) (Get a 2))"),
              Verdict::kNotEquivalent);
    EXPECT_EQ(eq("(* (Get a 0) (Get a 0))", "(Get a 0)"),
              Verdict::kNotEquivalent);
}

TEST(ScalarEquivalence, HandlesOpaqueOperators)
{
    auto eq = [](const char* a, const char* b) {
        return scalar_equivalent(Term::parse(a), Term::parse(b));
    };
    // sqrt/div/sgn are opaque but keyed by canonicalized arguments.
    EXPECT_EQ(eq("(sqrt (+ (Get a 0) (Get a 1)))",
                 "(sqrt (+ (Get a 1) (Get a 0)))"),
              Verdict::kEquivalent);
    EXPECT_EQ(eq("(/ (Get a 0) (+ (Get b 0) (Get b 1)))",
                 "(/ (Get a 0) (+ (Get b 1) (Get b 0)))"),
              Verdict::kEquivalent);
    EXPECT_EQ(eq("(sqrt (Get a 0))", "(sqrt (Get a 1))"),
              Verdict::kNotEquivalent);
    // Division by a constant is exact.
    EXPECT_EQ(eq("(/ (Get a 0) 2)", "(* (Get a 0) 1/2)"),
              Verdict::kEquivalent);
    // recip(x) == 1/x.
    EXPECT_EQ(eq("(recip (Get a 0))", "(/ 1 (Get a 0))"),
              Verdict::kEquivalent);
    // sgn of constants folds.
    EXPECT_EQ(eq("(sgn -5)", "-1"), Verdict::kEquivalent);
    // sqrt of a perfect square folds.
    EXPECT_EQ(eq("(sqrt 9/4)", "3/2"), Verdict::kEquivalent);
    // Uninterpreted calls compare by argument canonical form.
    EXPECT_EQ(eq("(Call f (+ (Get a 0) (Get a 1)))",
                 "(Call f (+ (Get a 1) (Get a 0)))"),
              Verdict::kEquivalent);
    EXPECT_EQ(eq("(Call f (Get a 0))", "(Call g (Get a 0))"),
              Verdict::kNotEquivalent);
}

TEST(TranslationValidation, AcceptsVectorizedPrograms)
{
    const TermRef spec = Term::parse(
        "(List (+ (Get a 0) (* (Get b 0) (Get c 0))) (+ (Get a 1) (* (Get "
        "b 1) (Get c 1))))");
    const TermRef optimized = Term::parse(
        "(VecMAC (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get b 1)) (Vec "
        "(Get c 0) (Get c 1)))");
    EXPECT_EQ(validate_translation(spec, optimized), Verdict::kEquivalent);
}

TEST(TranslationValidation, AcceptsZeroPadding)
{
    const TermRef spec =
        Term::parse("(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)))");
    // Optimized output is wider; the padding lanes must be zero.
    const TermRef ok = Term::parse(
        "(VecAdd (Vec (Get a 0) (Get a 1) 0 0) (Vec (Get b 0) (Get b 1) 0 "
        "0))");
    EXPECT_EQ(validate_translation(spec, ok), Verdict::kEquivalent);
    // Nonzero garbage in the padding is rejected.
    const TermRef bad = Term::parse(
        "(VecAdd (Vec (Get a 0) (Get a 1) 1 0) (Vec (Get b 0) (Get b 1) 0 "
        "0))");
    EXPECT_EQ(validate_translation(spec, bad), Verdict::kNotEquivalent);
}

TEST(TranslationValidation, CatchesMiscompiles)
{
    const TermRef spec =
        Term::parse("(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)))");
    const TermRef wrong = Term::parse(
        "(VecAdd (Vec (Get a 0) (Get a 0)) (Vec (Get b 0) (Get b 1)))");
    EXPECT_EQ(validate_translation(spec, wrong), Verdict::kNotEquivalent);
}

TEST(TranslationValidation, TooShortIsRejected)
{
    const TermRef spec = Term::parse("(List (Get a 0) (Get a 1))");
    const TermRef shorter = Term::parse("(List (Get a 0))");
    EXPECT_EQ(validate_translation(spec, shorter),
              Verdict::kNotEquivalent);
}

TEST(TranslationValidation, OverflowFallsBackToUnknown)
{
    // (a0+a1+a2+a3)^16 expands far past a tiny monomial cap.
    TermRef sum = t_get("x", 0);
    for (int i = 1; i < 4; ++i) {
        sum = t_add(sum, t_get("x", i));
    }
    TermRef pow = sum;
    for (int i = 0; i < 4; ++i) {
        pow = t_mul(pow, pow);
    }
    ValidationLimits limits;
    limits.max_monomials = 50;
    EXPECT_EQ(scalar_equivalent(pow, pow, limits), Verdict::kUnknown);
}

TEST(RandomCheck, AcceptsEquivalentAndRejectsDifferent)
{
    const TermRef spec = Term::parse(
        "(List (+ (Get a 0) (* (Get b 0) (Get c 0))) (* (Get b 1) (Get c "
        "1)))");
    const TermRef same = Term::parse(
        "(VecMAC (Vec (Get a 0) 0) (Vec (Get b 0) (Get b 1)) (Vec (Get c "
        "0) (Get c 1)))");
    const TermRef different = Term::parse(
        "(VecMAC (Vec (Get a 0) 0) (Vec (Get b 0) (Get b 0)) (Vec (Get c "
        "0) (Get c 1)))");
    EXPECT_TRUE(random_equivalent(spec, same));
    EXPECT_FALSE(random_equivalent(spec, different));
}

TEST(RandomCheck, ToleratesSqrtOfProducts)
{
    const TermRef spec = Term::parse(
        "(List (sqrt (+ (* (Get a 0) (Get a 0)) (* (Get a 1) (Get a "
        "1)))))");
    const TermRef same = Term::parse(
        "(List (sqrt (+ (* (Get a 1) (Get a 1)) (* (Get a 0) (Get a "
        "0)))))");
    EXPECT_TRUE(random_equivalent(spec, same));
}

}  // namespace
}  // namespace diospyros
