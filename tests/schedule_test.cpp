// Tests for the list scheduler: dependence preservation (semantics
// unchanged under random programs), stall reduction, and bail-out rules.

#include <gtest/gtest.h>

#include "machine/schedule.h"
#include "machine/sim.h"
#include "support/rng.h"

namespace diospyros {
namespace {

class ScheduleTest : public ::testing::Test {
  protected:
    TargetSpec spec_ = TargetSpec::fusion_g3_like();
    Simulator sim_{TargetSpec::fusion_g3_like()};
};

TEST_F(ScheduleTest, HidesLatencyOfIndependentChains)
{
    // Two independent mul chains interleaved badly: a naive order stalls
    // on every instruction; the scheduler should interleave them.
    ProgramBuilder pb;
    const int a = pb.fresh_float();
    const int b = pb.fresh_float();
    pb.fload(a, -1, 0);
    pb.fbinop(Opcode::kFMul, a, a, a);
    pb.fbinop(Opcode::kFMul, a, a, a);
    pb.fbinop(Opcode::kFMul, a, a, a);
    pb.fload(b, -1, 1);
    pb.fbinop(Opcode::kFMul, b, b, b);
    pb.fbinop(Opcode::kFMul, b, b, b);
    pb.fbinop(Opcode::kFMul, b, b, b);
    pb.fstore(-1, 2, a);
    pb.fstore(-1, 3, b);
    pb.halt();
    const Program original = pb.finish();

    Memory mem1(8), mem2(8);
    mem1.at(0) = mem2.at(0) = 2.0f;
    mem1.at(1) = mem2.at(1) = 3.0f;
    const RunResult before = sim_.run(original, mem1);

    ScheduleStats stats;
    const Program scheduled = schedule_program(original, spec_, &stats);
    EXPECT_TRUE(stats.applied);
    EXPECT_GT(stats.moved, 0u);
    const RunResult after = sim_.run(scheduled, mem2);

    EXPECT_FLOAT_EQ(mem2.at(2), mem1.at(2));
    EXPECT_FLOAT_EQ(mem2.at(3), mem1.at(3));
    EXPECT_LT(after.cycles, before.cycles);
    EXPECT_LT(after.stall_cycles, before.stall_cycles);
}

TEST_F(ScheduleTest, BailsOutOnControlFlow)
{
    ProgramBuilder pb;
    const int r = pb.fresh_int();
    pb.mov_i(r, 0);
    auto l = pb.new_label();
    pb.bind(l);
    pb.add_i(r, r, 1);
    pb.branch_lt(r, r, l);
    pb.halt();
    const Program p = pb.finish();
    ScheduleStats stats;
    const Program out = schedule_program(p, spec_, &stats);
    EXPECT_FALSE(stats.applied);
    EXPECT_EQ(out.code.size(), p.code.size());
}

TEST_F(ScheduleTest, BailsOutOnRegisterRelativeAddressing)
{
    ProgramBuilder pb;
    const int r = pb.fresh_int();
    const int f = pb.fresh_float();
    pb.mov_i(r, 0);
    pb.fload(f, r, 0);
    pb.halt();
    ScheduleStats stats;
    schedule_program(pb.finish(), spec_, &stats);
    EXPECT_FALSE(stats.applied);
}

TEST_F(ScheduleTest, PreservesStoreLoadDependences)
{
    // store x -> load x -> store y: order must be preserved exactly.
    ProgramBuilder pb;
    const int f = pb.fresh_float();
    const int g = pb.fresh_float();
    pb.fmov_i(f, 7.0f);
    pb.fstore(-1, 0, f);
    pb.fload(g, -1, 0);
    pb.fbinop(Opcode::kFAdd, g, g, g);
    pb.fstore(-1, 0, g);
    pb.halt();
    Memory mem(4);
    sim_.run(schedule_program(pb.finish(), spec_), mem);
    EXPECT_FLOAT_EQ(mem.at(0), 14.0f);
}

TEST_F(ScheduleTest, PreservesVectorScalarMemoryOverlap)
{
    // A vector store overlapping later scalar loads must come first.
    ProgramBuilder pb;
    const int v = pb.fresh_vec();
    const int f = pb.fresh_float();
    pb.vload(v, -1, 0);
    pb.vstore(-1, 4, v);
    pb.fload(f, -1, 6);  // reads lane 2 of the stored vector
    pb.fbinop(Opcode::kFMul, f, f, f);
    pb.fstore(-1, 8, f);
    pb.halt();
    Memory mem(9);
    for (int i = 0; i < 4; ++i) {
        mem.at(static_cast<std::size_t>(i)) = static_cast<float>(i + 1);
    }
    sim_.run(schedule_program(pb.finish(), spec_), mem);
    EXPECT_FLOAT_EQ(mem.at(8), 9.0f);  // (lane 2 == 3)^2
}

TEST_F(ScheduleTest, RandomizedProgramsKeepSemantics)
{
    // Property: scheduling never changes the memory image a random
    // straight-line program produces, and never makes it slower.
    Rng rng(515);
    for (int trial = 0; trial < 40; ++trial) {
        ProgramBuilder pb;
        constexpr int kRegs = 5;
        for (int r = 0; r < kRegs; ++r) {
            pb.fload(r, -1, r);
        }
        const int steps = static_cast<int>(rng.uniform_int(5, 30));
        for (int s = 0; s < steps; ++s) {
            const int d = static_cast<int>(rng.uniform_int(0, kRegs - 1));
            const int a = static_cast<int>(rng.uniform_int(0, kRegs - 1));
            const int b = static_cast<int>(rng.uniform_int(0, kRegs - 1));
            switch (rng.uniform_int(0, 4)) {
              case 0:
                pb.fbinop(Opcode::kFAdd, d, a, b);
                break;
              case 1:
                pb.fbinop(Opcode::kFMul, d, a, b);
                break;
              case 2:
                pb.fmac(d, a, b);
                break;
              case 3:
                pb.fstore(-1, static_cast<int>(rng.uniform_int(5, 9)), a);
                break;
              default:
                pb.fload(d, -1,
                         static_cast<int>(rng.uniform_int(0, 9)));
                break;
            }
        }
        for (int r = 0; r < kRegs; ++r) {
            pb.fstore(-1, 10 + r, r);
        }
        pb.halt();
        const Program original = pb.finish();
        const Program scheduled = schedule_program(original, spec_);

        Memory mem1(16), mem2(16);
        for (int i = 0; i < 10; ++i) {
            const float v = rng.uniform_float(-2, 2);
            mem1.at(static_cast<std::size_t>(i)) = v;
            mem2.at(static_cast<std::size_t>(i)) = v;
        }
        const RunResult before = sim_.run(original, mem1);
        const RunResult after = sim_.run(scheduled, mem2);
        for (int i = 0; i < 16; ++i) {
            ASSERT_FLOAT_EQ(mem2.at(static_cast<std::size_t>(i)),
                            mem1.at(static_cast<std::size_t>(i)))
                << "trial " << trial << " addr " << i;
        }
        EXPECT_LE(after.cycles, before.cycles) << "trial " << trial;
    }
}

}  // namespace
}  // namespace diospyros
