// Full-pipeline integration sweeps: every kernel family from the paper's
// evaluation at small/medium sizes, across target widths, checked for
// (a) exact translation validation, (b) simulator-vs-reference output
// agreement, and (c) Diospyros never losing to the naive parametric
// baseline.

#include <gtest/gtest.h>

#include "compiler/driver.h"
#include "kernels/kernels.h"
#include "scalar/lower.h"
#include "support/rng.h"

namespace diospyros {
namespace {

CompilerOptions
sweep_options(int width)
{
    CompilerOptions options;
    options.target = TargetSpec::fusion_g3_like();
    options.target.vector_width = width;
    options.limits = RunnerLimits{.node_limit = 300'000,
                                  .iter_limit = 12,
                                  .time_limit_seconds = 20.0};
    options.validate = true;
    options.random_check = true;
    return options;
}

void
check_compiled(const scalar::Kernel& kernel, const CompilerOptions& options,
               const std::string& label)
{
    const CompiledKernel compiled = compile_kernel(kernel, options);

    // Validation must be exact; only very large specs may fall back to
    // the randomized checker, which must then pass.
    EXPECT_NE(compiled.report.validation, Verdict::kNotEquivalent)
        << label;
    EXPECT_TRUE(compiled.report.random_check_passed) << label;

    // Machine-level symbolic validation ran (validate=true) and feeds
    // the same exact canonicalizer as term-level validation: whenever
    // the term-level proof was exact, the *scheduled machine code* must
    // also be proved equivalent — not merely fail to disprove it. On
    // the one kernel whose polynomials cap out the canonicalizer at
    // both levels (qr4), kUnknown is the honest verdict and the
    // randomized differential still gates it; kNotEquivalent is a bug
    // anywhere.
    EXPECT_TRUE(compiled.report.machine_validated) << label;
    EXPECT_NE(compiled.report.machine_validation, Verdict::kNotEquivalent)
        << label << " " << compiled.report.machine_witness;
    if (compiled.report.validation == Verdict::kEquivalent) {
        EXPECT_EQ(compiled.report.machine_validation, Verdict::kEquivalent)
            << label << " " << compiled.report.machine_witness;
    }

    const scalar::BufferMap inputs = kernels::make_inputs(kernel, 7);
    const auto run = compiled.run(inputs, options.target);
    const scalar::BufferMap want = scalar::run_reference(kernel, inputs);
    for (const auto& [name, w] : want) {
        const auto& g = run.outputs.at(name);
        ASSERT_EQ(g.size(), w.size()) << label;
        for (std::size_t i = 0; i < w.size(); ++i) {
            const float scale =
                std::max({1.0f, std::abs(w[i]), std::abs(g[i])});
            ASSERT_LE(std::abs(g[i] - w[i]), 5e-3f * scale)
                << label << " " << name << "[" << i << "]";
        }
    }

    const auto naive = scalar::run_baseline(
        kernel, inputs, scalar::LowerMode::kNaiveParametric,
        options.target);
    EXPECT_LT(run.result.cycles, naive.result.cycles) << label;
}

// --- 2D convolution sweep ----------------------------------------------------

class ConvSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvSweep, CompilesValidatesAndBeatsNaive)
{
    const auto [ir, ic, fr, fc] = GetParam();
    check_compiled(kernels::make_conv2d(ir, ic, fr, fc),
                   sweep_options(4),
                   "conv " + std::to_string(ir) + "x" + std::to_string(ic) +
                       "/" + std::to_string(fr) + "x" + std::to_string(fc));
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, ConvSweep,
    ::testing::Values(std::make_tuple(3, 3, 2, 2),
                      std::make_tuple(3, 3, 3, 3),
                      std::make_tuple(3, 5, 3, 3),
                      std::make_tuple(4, 4, 3, 3),
                      std::make_tuple(8, 8, 3, 3),
                      std::make_tuple(5, 7, 2, 3),   // rectangular
                      std::make_tuple(2, 2, 4, 4),   // filter > input
                      std::make_tuple(1, 6, 1, 3),   // 1-row signals
                      std::make_tuple(6, 1, 3, 1)));

// --- Matrix multiply sweep ------------------------------------------------------

class MatMulSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulSweep, CompilesValidatesAndBeatsNaive)
{
    const auto [n, m, p] = GetParam();
    check_compiled(kernels::make_matmul(n, m, p), sweep_options(4),
                   "matmul " + std::to_string(n) + "x" + std::to_string(m) +
                       "x" + std::to_string(p));
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, MatMulSweep,
    ::testing::Values(std::make_tuple(2, 2, 2), std::make_tuple(2, 3, 3),
                      std::make_tuple(3, 3, 3), std::make_tuple(4, 4, 4),
                      std::make_tuple(1, 4, 4),   // row-vector times matrix
                      std::make_tuple(4, 4, 1),   // matrix times column
                      std::make_tuple(3, 5, 2),   // rectangular
                      std::make_tuple(8, 8, 8)));

// --- Width portability sweep ----------------------------------------------------

class WidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WidthSweep, MatMul3x3AcrossVectorWidths)
{
    check_compiled(kernels::make_matmul(3, 3, 3),
                   sweep_options(GetParam()),
                   "matmul3 width " + std::to_string(GetParam()));
}

TEST_P(WidthSweep, ConvAcrossVectorWidths)
{
    check_compiled(kernels::make_conv2d(3, 3, 2, 2),
                   sweep_options(GetParam()),
                   "conv width " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(2, 4, 8));

// --- Remaining paper kernels -----------------------------------------------------

TEST(Integration, QProd)
{
    check_compiled(kernels::make_qprod(), sweep_options(4), "qprod");
}

TEST(Integration, QrDecomp3)
{
    check_compiled(kernels::make_qrdecomp(3), sweep_options(4), "qr3");
}

TEST(Integration, QrDecomp4)
{
    check_compiled(kernels::make_qrdecomp(4), sweep_options(4), "qr4");
}

// --- Full-AC configuration stays sound ---------------------------------------------

TEST(Integration, FullAcProducesEquivalentKernels)
{
    CompilerOptions options = sweep_options(4);
    options.rules.full_ac = true;
    options.limits.node_limit = 400'000;
    check_compiled(kernels::make_matmul(2, 2, 2), options, "matmul2 AC");
    check_compiled(kernels::make_conv2d(3, 3, 2, 2), options, "conv AC");
}

// --- Headline-regression guard -------------------------------------------------

TEST(Integration, HeadlineSpeedupsHold)
{
    // Guards the Figure 5 story against compiler regressions: on these
    // representative kernels Diospyros must beat the fixed-size baseline
    // by a healthy margin (full-figure numbers live in bench/).
    const CompilerOptions options = sweep_options(4);
    const struct {
        scalar::Kernel kernel;
        double min_speedup;
    } cases[] = {
        {kernels::make_matmul(4, 4, 4), 3.0},
        {kernels::make_conv2d(3, 5, 3, 3), 2.0},
        {kernels::make_matmul(2, 2, 2), 2.0},
    };
    for (const auto& c : cases) {
        const CompiledKernel compiled = compile_kernel(c.kernel, options);
        const scalar::BufferMap inputs = kernels::make_inputs(c.kernel, 1);
        const auto dios = compiled.run(inputs, options.target);
        const auto fixed = scalar::run_baseline(
            c.kernel, inputs, scalar::LowerMode::kNaiveFixed,
            options.target);
        EXPECT_GE(static_cast<double>(fixed.result.cycles) /
                      static_cast<double>(dios.result.cycles),
                  c.min_speedup)
            << c.kernel.name;
    }
}

// --- Determinism ---------------------------------------------------------------------

TEST(Integration, CompilationIsDeterministic)
{
    const scalar::Kernel kernel = kernels::make_conv2d(3, 5, 3, 3);
    const CompilerOptions options = sweep_options(4);
    const CompiledKernel a = compile_kernel(kernel, options);
    const CompiledKernel b = compile_kernel(kernel, options);
    EXPECT_TRUE(Term::equal(a.extracted, b.extracted));
    EXPECT_EQ(a.machine.code.size(), b.machine.code.size());
    EXPECT_EQ(a.c_source, b.c_source);
    const scalar::BufferMap inputs = kernels::make_inputs(kernel, 3);
    EXPECT_EQ(a.run(inputs, options.target).result.cycles,
              b.run(inputs, options.target).result.cycles);
}

}  // namespace
}  // namespace diospyros
