// Unit tests for the support layer: s-expressions, rationals, RNG, hashing.

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/error.h"
#include "support/hash.h"
#include "support/rational.h"
#include "support/rng.h"
#include "support/sexpr.h"

namespace diospyros {
namespace {

TEST(Sexpr, ParsesAtom)
{
    const Sexpr s = parse_sexpr("hello");
    ASSERT_TRUE(s.is_atom());
    EXPECT_EQ(s.token(), "hello");
}

TEST(Sexpr, ParsesNestedList)
{
    const Sexpr s = parse_sexpr("(+ (Get a 0) (Get b 1))");
    ASSERT_TRUE(s.is_list());
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].token(), "+");
    EXPECT_TRUE(s[1].is_list());
    EXPECT_EQ(s[1][1].token(), "a");
    EXPECT_EQ(s[2][2].as_integer(), 1);
}

TEST(Sexpr, RoundTripsThroughToString)
{
    const std::string text = "(List (+ a 1) (* b -2) (Vec 0 0 0 0))";
    const Sexpr s = parse_sexpr(text);
    EXPECT_EQ(s.to_string(), text);
    EXPECT_EQ(parse_sexpr(s.to_string()), s);
}

TEST(Sexpr, SkipsCommentsAndWhitespace)
{
    const Sexpr s = parse_sexpr("; header\n ( a ; mid\n b )\n; tail\n");
    ASSERT_TRUE(s.is_list());
    EXPECT_EQ(s.size(), 2u);
}

TEST(Sexpr, ParsesMultipleTopLevelForms)
{
    const auto forms = parse_sexpr_list("(a) (b c) d");
    ASSERT_EQ(forms.size(), 3u);
    EXPECT_TRUE(forms[2].is_atom());
}

TEST(Sexpr, RejectsMalformedInput)
{
    EXPECT_THROW(parse_sexpr("(a b"), UserError);
    EXPECT_THROW(parse_sexpr(")"), UserError);
    EXPECT_THROW(parse_sexpr("a b"), UserError);
    EXPECT_THROW(parse_sexpr(""), UserError);
}

TEST(Sexpr, IntegerClassification)
{
    EXPECT_TRUE(parse_sexpr("-42").is_integer());
    EXPECT_TRUE(parse_sexpr("+7").is_integer());
    EXPECT_FALSE(parse_sexpr("4.5").is_integer());
    EXPECT_TRUE(parse_sexpr("4.5").is_number());
    EXPECT_FALSE(parse_sexpr("x1").is_number());
}

TEST(Sexpr, PrettyPrintWrapsLongForms)
{
    std::vector<Sexpr> kids;
    for (int i = 0; i < 20; ++i) {
        kids.push_back(parse_sexpr("(+ some-long-atom-name " +
                                   std::to_string(i) + ")"));
    }
    const Sexpr s = Sexpr::list(kids);
    const std::string pretty = s.to_pretty_string(40);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    EXPECT_EQ(parse_sexpr(pretty), s);
}

TEST(Rational, NormalizesOnConstruction)
{
    EXPECT_EQ(Rational(2, 4), Rational(1, 2));
    EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
    EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
    EXPECT_EQ(Rational(0, 7), Rational(0));
    EXPECT_EQ(Rational(0, 7).den(), 1);
}

TEST(Rational, Arithmetic)
{
    const Rational half(1, 2);
    const Rational third(1, 3);
    EXPECT_EQ(half + third, Rational(5, 6));
    EXPECT_EQ(half - third, Rational(1, 6));
    EXPECT_EQ(half * third, Rational(1, 6));
    EXPECT_EQ(half / third, Rational(3, 2));
    EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, Ordering)
{
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
    EXPECT_EQ(Rational(3, 6) <=> Rational(1, 2),
              std::strong_ordering::equal);
}

TEST(Rational, DetectsOverflow)
{
    const Rational big(INT64_MAX);
    EXPECT_THROW(big * Rational(2), RationalOverflow);
    EXPECT_THROW(big + big, RationalOverflow);
}

TEST(Rational, DivisionByZeroThrows)
{
    EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
    EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, ToStringForms)
{
    EXPECT_EQ(Rational(5).to_string(), "5");
    EXPECT_EQ(Rational(-3, 4).to_string(), "-3/4");
}

TEST(Rng, IsDeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, Uniform01StaysInRange)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform01();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Hash, CombineSpreadsValues)
{
    std::unordered_set<std::size_t> seen;
    for (int a = 0; a < 30; ++a) {
        for (int b = 0; b < 30; ++b) {
            std::size_t seed = 0;
            hash_combine(seed, a);
            hash_combine(seed, b);
            seen.insert(seed);
        }
    }
    // All 900 (a, b) pairs should hash distinctly.
    EXPECT_EQ(seen.size(), 900u);
}

TEST(Error, CheckMacroThrowsUserError)
{
    EXPECT_THROW(DIOS_CHECK(false, "bad input"), UserError);
    EXPECT_NO_THROW(DIOS_CHECK(true, "ok"));
    EXPECT_THROW(DIOS_ASSERT(false, "bug"), InternalError);
}

}  // namespace
}  // namespace diospyros
