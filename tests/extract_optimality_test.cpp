// Property tests pinning down the extraction algorithm: on small
// e-graphs, the Extractor's choice must match a brute-force enumeration
// of every represented term, for both the tree-size cost and the
// Diospyros cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "egraph/extract.h"
#include "egraph/runner.h"
#include "rules/cost.h"
#include "rules/rules.h"
#include "support/rng.h"

namespace diospyros {
namespace {

/**
 * Brute-force minimum extraction cost per class: fixpoint over explicit
 * enumeration, structurally identical to what the Extractor must compute
 * but written independently (top-down memoized recursion with an
 * iteration cap instead of the Extractor's relaxation loop).
 */
std::map<ClassId, double>
brute_force_costs(const EGraph& g, const CostModel& cost)
{
    std::map<ClassId, double> best;
    for (const ClassId id : g.class_ids()) {
        best[id] = std::numeric_limits<double>::infinity();
    }
    // Repeat n_classes times: guarantees convergence on any DAG depth.
    for (std::size_t round = 0; round < g.num_classes() + 1; ++round) {
        for (const ClassId id : g.class_ids()) {
            for (const ENode& node : g.eclass(id).nodes) {
                double total = cost.node_cost(g, node);
                bool ok = true;
                for (const ClassId child : node.children) {
                    const double c = best.at(g.find_const(child));
                    if (!std::isfinite(c)) {
                        ok = false;
                        break;
                    }
                    total += c;
                }
                if (ok) {
                    best[id] = std::min(best[id], total);
                }
            }
        }
    }
    return best;
}

/** Builds a random small e-graph by inserting terms and merging a few
 *  equivalent-by-rule classes. */
EGraph
random_graph(Rng& rng, ClassId* root_out)
{
    EGraph g;
    std::vector<ClassId> pool;
    for (int i = 0; i < 4; ++i) {
        pool.push_back(g.add_get(Symbol("a"), i));
    }
    pool.push_back(g.add_const(Rational(0)));
    pool.push_back(g.add_const(Rational(1)));
    for (int step = 0; step < 12; ++step) {
        const auto x = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(pool.size()) - 1));
        const auto y = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(pool.size()) - 1));
        const Op op = rng.uniform_int(0, 1) ? Op::kAdd : Op::kMul;
        pool.push_back(g.add_op(op, {pool[x], pool[y]}));
    }
    g.rebuild();
    // Saturate with sound simplification rules to create choice.
    std::vector<Rewrite> rules;
    rules.push_back(Rewrite::make("add0", "(+ ?x 0)", "?x"));
    rules.push_back(Rewrite::make("mul1", "(* ?x 1)", "?x"));
    rules.push_back(Rewrite::make("comm", "(+ ?a ?b)", "(+ ?b ?a)"));
    rules.push_back(Rewrite::make("mul0", "(* ?x 0)", "0"));
    Runner(RunnerLimits{.node_limit = 50'000,
                        .iter_limit = 6,
                        .time_limit_seconds = 5.0})
        .run(g, rules);
    *root_out = g.find(pool.back());
    return g;
}

TEST(ExtractOptimality, MatchesBruteForceTreeSize)
{
    Rng rng(3000);
    for (int trial = 0; trial < 25; ++trial) {
        ClassId root = 0;
        EGraph g = random_graph(rng, &root);
        const TreeSizeCost cost;
        const Extractor ex(g, cost);
        const auto brute = brute_force_costs(g, cost);
        for (const ClassId id : g.class_ids()) {
            EXPECT_DOUBLE_EQ(ex.class_cost(id), brute.at(id))
                << "trial " << trial << " class " << id;
        }
        // The extracted term's real tree size equals the claimed cost.
        const Extraction best = ex.extract(root);
        EXPECT_DOUBLE_EQ(best.cost,
                         static_cast<double>(Term::tree_size(best.term)));
    }
}

TEST(ExtractOptimality, MatchesBruteForceDiosCost)
{
    Rng rng(4000);
    const DiosCostModel cost({}, 4);
    for (int trial = 0; trial < 25; ++trial) {
        ClassId root = 0;
        EGraph g = random_graph(rng, &root);
        const Extractor ex(g, cost);
        const auto brute = brute_force_costs(g, cost);
        for (const ClassId id : g.class_ids()) {
            EXPECT_NEAR(ex.class_cost(id), brute.at(id), 1e-9)
                << "trial " << trial << " class " << id;
        }
    }
}

TEST(ExtractOptimality, ExtractedTermIsRepresented)
{
    // The extracted term must re-insert into the same class.
    Rng rng(5000);
    for (int trial = 0; trial < 10; ++trial) {
        ClassId root = 0;
        EGraph g = random_graph(rng, &root);
        const TreeSizeCost cost;
        const Extractor ex(g, cost);
        const Extraction best = ex.extract(root);
        const ClassId reinserted = g.add_term(best.term);
        g.rebuild();
        EXPECT_EQ(g.find(reinserted), g.find(root)) << "trial " << trial;
    }
}

}  // namespace
}  // namespace diospyros
