// Tests for the host-side matrix library, decompositions, and the
// Eigen-substitute simulator baseline.

#include <gtest/gtest.h>

#include "kernels/kernels.h"
#include "linalg/baseline.h"
#include "linalg/decompose.h"
#include "support/rng.h"

namespace diospyros::linalg {
namespace {

Mat3
random_mat3(Rng& rng)
{
    Mat3 m;
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            m(r, c) = rng.uniform_float(-2.0f, 2.0f);
        }
    }
    // Keep it well away from singular.
    for (int i = 0; i < 3; ++i) {
        m(i, i) += 4.0f;
    }
    return m;
}

TEST(Matrix, BasicOps)
{
    Mat<2, 3> a;
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    a(1, 0) = 4;
    a(1, 1) = 5;
    a(1, 2) = 6;
    const Mat<3, 2> t = a.transposed();
    EXPECT_FLOAT_EQ(t(2, 1), 6.0f);

    const auto i3 = Mat3::identity();
    EXPECT_FLOAT_EQ((i3 * i3)(1, 1), 1.0f);

    Mat<2, 2> b;
    b(0, 0) = 1;
    b(0, 1) = 2;
    b(1, 0) = 3;
    b(1, 1) = 4;
    const auto flip_r = b.flipped_rows();
    EXPECT_FLOAT_EQ(flip_r(0, 0), 3.0f);
    const auto flip_c = b.flipped_cols();
    EXPECT_FLOAT_EQ(flip_c(0, 0), 2.0f);
}

TEST(Matrix, MultiplyMatchesHandComputed)
{
    Mat<2, 3> a;
    Mat<3, 2> b;
    int v = 1;
    for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 3; ++c) {
            a(r, c) = static_cast<float>(v++);
        }
    }
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 2; ++c) {
            b(r, c) = static_cast<float>(v++);
        }
    }
    const auto p = a * b;
    EXPECT_FLOAT_EQ(p(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
    EXPECT_FLOAT_EQ(p(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(Quaternion, RotationMatchesCrossFormula)
{
    const float c = std::sqrt(0.5f);
    const Quaternion q{c, 0.0f, 0.0f, c};  // 90 deg about z
    Vec3 x;
    x(0, 0) = 1;
    const Vec3 r = q.rotate(x);
    EXPECT_NEAR(r(0, 0), 0.0f, 1e-6f);
    EXPECT_NEAR(r(1, 0), 1.0f, 1e-6f);
    EXPECT_NEAR(r(2, 0), 0.0f, 1e-6f);
}

TEST(HouseholderQr, ReconstructsInput)
{
    Rng rng(8);
    for (int trial = 0; trial < 20; ++trial) {
        const Mat3 a = random_mat3(rng);
        const QrResult<3> qr = householder_qr(a);
        // R upper triangular.
        EXPECT_NEAR(qr.r(1, 0), 0.0f, 1e-4f);
        EXPECT_NEAR(qr.r(2, 0), 0.0f, 1e-4f);
        EXPECT_NEAR(qr.r(2, 1), 0.0f, 1e-4f);
        // Q orthogonal.
        EXPECT_LT((qr.q * qr.q.transposed())
                      .max_abs_diff(Mat3::identity()),
                  1e-4f);
        // Q * R == A.
        EXPECT_LT((qr.q * qr.r).max_abs_diff(a), 1e-3f);
    }
}

TEST(RqDecompose, ReconstructsInput)
{
    Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        const Mat3 a = random_mat3(rng);
        const RqResult<3> rq = rq_decompose(a);
        // R upper triangular.
        EXPECT_NEAR(rq.r(1, 0), 0.0f, 1e-4f);
        EXPECT_NEAR(rq.r(2, 0), 0.0f, 1e-4f);
        EXPECT_NEAR(rq.r(2, 1), 0.0f, 1e-4f);
        // Q orthogonal.
        EXPECT_LT((rq.q * rq.q.transposed())
                      .max_abs_diff(Mat3::identity()),
                  1e-4f);
        // R * Q == A.
        EXPECT_LT((rq.r * rq.q).max_abs_diff(a), 1e-3f);
    }
}

TEST(DecomposeProjection, RoundTripsThroughCompose)
{
    Rng rng(10);
    for (int trial = 0; trial < 20; ++trial) {
        // Build a plausible camera: K upper triangular positive diag,
        // R a rotation (from quaternion), c arbitrary.
        Mat3 k;
        k(0, 0) = rng.uniform_float(0.5f, 3.0f);
        k(1, 1) = rng.uniform_float(0.5f, 3.0f);
        k(2, 2) = 1.0f;
        k(0, 1) = rng.uniform_float(-0.2f, 0.2f);
        k(0, 2) = rng.uniform_float(-1.0f, 1.0f);
        k(1, 2) = rng.uniform_float(-1.0f, 1.0f);

        Quaternion q{rng.uniform_float(-1, 1), rng.uniform_float(-1, 1),
                     rng.uniform_float(-1, 1), rng.uniform_float(-1, 1)};
        const float qs = q.norm();
        q.w /= qs;
        q.x /= qs;
        q.y /= qs;
        q.z /= qs;
        Mat3 r;
        // Rotation matrix columns = rotated basis vectors.
        for (int c = 0; c < 3; ++c) {
            Vec3 e;
            e(c, 0) = 1.0f;
            const Vec3 col = q.rotate(e);
            for (int rr = 0; rr < 3; ++rr) {
                r(rr, c) = col(rr, 0);
            }
        }
        Vec3 center;
        for (int i = 0; i < 3; ++i) {
            center(i, 0) = rng.uniform_float(-5, 5);
        }

        const Mat34 p = compose_projection(k, r, center);
        const ProjectionDecomposition d = decompose_projection(p);
        EXPECT_LT(d.calibration.max_abs_diff(k), 2e-3f) << "trial "
                                                        << trial;
        EXPECT_LT(d.rotation.max_abs_diff(r), 2e-3f) << "trial " << trial;
        EXPECT_LT(d.center.max_abs_diff(center), 5e-3f)
            << "trial " << trial;
    }
}

TEST(EigenBaseline, MatchesReferenceOnMatMul)
{
    const scalar::Kernel kernel = kernels::make_matmul(3, 3, 3);
    const scalar::BufferMap inputs = kernels::make_inputs(kernel, 12);
    const auto run =
        run_eigen_like(kernel, inputs, TargetSpec::fusion_g3_like());
    const scalar::BufferMap want = scalar::run_reference(kernel, inputs);
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_NEAR(run.outputs.at("C")[i], want.at("C")[i], 1e-4f);
    }
}

TEST(EigenBaseline, SlowerThanHandFixedLowering)
{
    // The portable library pays abstraction overhead relative to
    // hand-specialized code.
    const TargetSpec target = TargetSpec::fusion_g3_like();
    const scalar::Kernel kernel = kernels::make_matmul(3, 3, 3);
    const scalar::BufferMap inputs = kernels::make_inputs(kernel, 13);
    const auto eigen = run_eigen_like(kernel, inputs, target);
    const auto fixed = scalar::run_baseline(
        kernel, inputs, scalar::LowerMode::kNaiveFixed, target);
    EXPECT_GT(eigen.result.cycles, fixed.result.cycles);
}

TEST(EigenBaseline, AvailabilityMirrorsFigure5)
{
    EXPECT_TRUE(eigen_supports(kernels::make_matmul(2, 2, 2)));
    EXPECT_TRUE(eigen_supports(kernels::make_qprod()));
    EXPECT_TRUE(eigen_supports(kernels::make_qrdecomp(3)));
    EXPECT_FALSE(eigen_supports(kernels::make_conv2d(3, 3, 2, 2)));
    EXPECT_THROW(run_eigen_like(kernels::make_conv2d(3, 3, 2, 2), {},
                                TargetSpec::fusion_g3_like()),
                 UserError);
}

}  // namespace
}  // namespace diospyros::linalg
