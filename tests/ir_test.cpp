// Unit tests for the vector DSL: term construction, parsing/printing,
// shape checking, and the concrete evaluator.

#include <gtest/gtest.h>

#include <cmath>

#include "ir/eval.h"
#include "ir/term.h"
#include "support/error.h"

namespace diospyros {
namespace {

TEST(Symbol, InternsBySpelling)
{
    EXPECT_EQ(Symbol("a"), Symbol("a"));
    EXPECT_NE(Symbol("a"), Symbol("b"));
    EXPECT_EQ(Symbol("a").str(), "a");
    EXPECT_FALSE(Symbol().valid());
}

TEST(Term, FactoriesSetPayloads)
{
    const TermRef c = Term::constant(Rational(3, 2));
    EXPECT_EQ(c->op(), Op::kConst);
    EXPECT_EQ(c->value(), Rational(3, 2));

    const TermRef g = t_get("a", 5);
    EXPECT_EQ(g->op(), Op::kGet);
    EXPECT_EQ(g->symbol().str(), "a");
    EXPECT_EQ(g->index(), 5);
}

TEST(Term, MakeChecksArity)
{
    EXPECT_THROW(Term::make(Op::kAdd, {t_const(1)}), UserError);
    EXPECT_THROW(Term::make(Op::kVecMAC, {t_vec({t_const(0)})}), UserError);
    EXPECT_THROW(Term::make(Op::kVec, {}), UserError);
}

TEST(Term, ParsePrintRoundTrip)
{
    const std::string text =
        "(List (+ (Get a 0) (Get b 0)) (* (Get a 1) -2))";
    const TermRef t = Term::parse(text);
    EXPECT_EQ(Term::to_string(t), text);
}

TEST(Term, ParsesVectorOps)
{
    const TermRef t = Term::parse(
        "(VecMAC (Vec 0 0) (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get b "
        "1)))");
    EXPECT_EQ(t->op(), Op::kVecMAC);
    EXPECT_EQ(check_shape(t).width, 2);
}

TEST(Term, ParsesCalls)
{
    const TermRef t = Term::parse("(Call f (Get a 0) 2)");
    EXPECT_EQ(t->op(), Op::kCall);
    EXPECT_EQ(t->symbol().str(), "f");
    EXPECT_EQ(t->arity(), 2u);
}

TEST(Term, StructuralEquality)
{
    const TermRef a = Term::parse("(+ (Get a 0) (* (Get b 1) 3))");
    const TermRef b = Term::parse("(+ (Get a 0) (* (Get b 1) 3))");
    const TermRef c = Term::parse("(+ (Get a 0) (* (Get b 1) 4))");
    EXPECT_TRUE(Term::equal(a, b));
    EXPECT_FALSE(Term::equal(a, c));
}

TEST(Term, DagVsTreeSize)
{
    const TermRef shared = Term::parse("(+ (Get a 0) (Get a 1))");
    const TermRef t = t_mul(shared, shared);
    // DAG: mul + add + 2 gets = 4; tree: 1 + 2*3 = 7.
    EXPECT_EQ(Term::dag_size(t), 4u);
    EXPECT_EQ(Term::tree_size(t), 7u);
}

TEST(Shape, ScalarAndVectorWidths)
{
    EXPECT_EQ(check_shape(Term::parse("(+ 1 2)")).kind,
              Shape::Kind::kScalar);
    EXPECT_EQ(check_shape(Term::parse("(Vec 1 2 3 4)")).width, 4);
    EXPECT_EQ(
        check_shape(Term::parse("(Concat (Vec 1 2) (Vec 3 4))")).width, 4);
    EXPECT_EQ(check_shape(Term::parse("(List (Vec 1 2) 5)")).width, 3);
}

TEST(Shape, RejectsIllFormedTerms)
{
    // Scalar op over a vector.
    EXPECT_THROW(check_shape(Term::parse("(+ (Vec 1 2) 3)")), UserError);
    // Vector op over scalars.
    EXPECT_THROW(check_shape(Term::parse("(VecAdd 1 2)")), UserError);
    // Lane-width mismatch.
    EXPECT_THROW(check_shape(Term::parse("(VecAdd (Vec 1 2) (Vec 1 2 3))")),
                 UserError);
    // Vec of vectors.
    EXPECT_THROW(check_shape(Term::parse("(Vec (Vec 1 2))")), UserError);
}

class EvalTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        env_.bind_array("a", {1.0, 2.0, 3.0, 4.0});
        env_.bind_array("b", {10.0, 20.0, 30.0, 40.0});
        env_.bind_scalar("x", 2.5);
    }

    double
    eval1(const std::string& text)
    {
        return evaluate_scalar(Term::parse(text), env_);
    }

    EvalEnv env_;
};

TEST_F(EvalTest, ScalarArithmetic)
{
    EXPECT_DOUBLE_EQ(eval1("(+ (Get a 0) (Get b 1))"), 21.0);
    EXPECT_DOUBLE_EQ(eval1("(- (Get a 3) (Get a 0))"), 3.0);
    EXPECT_DOUBLE_EQ(eval1("(* (Get a 1) (Get b 2))"), 60.0);
    EXPECT_DOUBLE_EQ(eval1("(/ (Get b 0) (Get a 3))"), 2.5);
    EXPECT_DOUBLE_EQ(eval1("(neg x)"), -2.5);
    EXPECT_DOUBLE_EQ(eval1("(sqrt (Get a 3))"), 2.0);
    EXPECT_DOUBLE_EQ(eval1("(sgn (neg x))"), -1.0);
    EXPECT_DOUBLE_EQ(eval1("(sgn 0)"), 0.0);
    EXPECT_DOUBLE_EQ(eval1("(recip (Get a 1))"), 0.5);
}

TEST_F(EvalTest, VectorOps)
{
    const auto v = evaluate(
        Term::parse("(VecAdd (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get "
                    "b 1)))"),
        env_);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 11.0);
    EXPECT_DOUBLE_EQ(v[1], 22.0);
}

TEST_F(EvalTest, VecMACSemantics)
{
    const auto v = evaluate(
        Term::parse("(VecMAC (Vec 1 1) (Vec (Get a 0) (Get a 1)) (Vec (Get "
                    "b 0) (Get b 1)))"),
        env_);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 1.0 + 1.0 * 10.0);
    EXPECT_DOUBLE_EQ(v[1], 1.0 + 2.0 * 20.0);
}

TEST_F(EvalTest, ListFlattens)
{
    const auto v = evaluate(
        Term::parse("(List (Concat (Vec 1 2) (Vec 3 4)) (Get a 0))"), env_);
    EXPECT_EQ(v, (std::vector<double>{1, 2, 3, 4, 1}));
}

TEST_F(EvalTest, UserFunctions)
{
    env_.bind_function("square", [](std::span<const double> args) {
        return args[0] * args[0];
    });
    EXPECT_DOUBLE_EQ(eval1("(Call square (Get a 2))"), 9.0);
    EXPECT_THROW(eval1("(Call unknown 1)"), UserError);
}

TEST_F(EvalTest, ErrorsOnUnboundOrOutOfRange)
{
    EXPECT_THROW(eval1("(Get missing 0)"), UserError);
    EXPECT_THROW(eval1("(Get a 17)"), UserError);
    EXPECT_THROW(eval1("unbound_var"), UserError);
}

TEST_F(EvalTest, SharedSubtermsEvaluateOnce)
{
    // Build a deep DAG of sharing; naive tree evaluation would be 2^40.
    TermRef t = t_add(t_get("a", 0), t_get("a", 1));
    for (int i = 0; i < 40; ++i) {
        t = t_add(t, t);
    }
    const double expected = 3.0 * std::pow(2.0, 40);
    EXPECT_DOUBLE_EQ(evaluate_scalar(t, env_), expected);
}

}  // namespace
}  // namespace diospyros
