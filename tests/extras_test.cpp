// Tests for the extra kernel library: reference semantics against
// hand-computed values / mathematical properties, plus full compilation
// with validation and baseline comparisons for each kernel.

#include <gtest/gtest.h>

#include <cmath>

#include "compiler/driver.h"
#include "kernels/extras.h"
#include "scalar/lower.h"
#include "support/rng.h"

namespace diospyros::kernels {
namespace {

using scalar::BufferMap;

CompilerOptions
options()
{
    CompilerOptions opt;
    opt.validate = true;
    opt.random_check = true;
    opt.limits = RunnerLimits{.node_limit = 300'000,
                              .iter_limit = 12,
                              .time_limit_seconds = 20.0};
    return opt;
}

/** Compiles, runs, and checks against the reference; returns cycles. */
std::uint64_t
compile_and_check(const scalar::Kernel& kernel, const BufferMap& inputs,
                  float tol = 1e-3f)
{
    const CompiledKernel compiled = compile_kernel(kernel, options());
    EXPECT_NE(compiled.report.validation, Verdict::kNotEquivalent)
        << kernel.name;
    EXPECT_TRUE(compiled.report.random_check_passed) << kernel.name;
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    const BufferMap want = scalar::run_reference(kernel, inputs);
    for (const auto& [name, w] : want) {
        const auto& g = run.outputs.at(name);
        EXPECT_EQ(g.size(), w.size());
        for (std::size_t i = 0; i < w.size(); ++i) {
            const float scale =
                std::max({1.0f, std::abs(w[i]), std::abs(g[i])});
            EXPECT_LE(std::abs(g[i] - w[i]), tol * scale)
                << kernel.name << " " << name << "[" << i << "]";
        }
    }
    return run.result.cycles;
}

TEST(Fir, MatchesHandComputed)
{
    const scalar::Kernel k = make_fir(6, 3);
    const BufferMap out = scalar::run_reference(
        k, {{"x", {1, 2, 3, 4, 5, 6}}, {"h", {1, 0, -1}}});
    // y[i] = x[i] - x[i+2].
    EXPECT_EQ(out.at("y"), (std::vector<float>{-2, -2, -2, -2}));
}

TEST(Fir, CompilesAndVectorizes)
{
    const scalar::Kernel k = make_fir(11, 4);
    BufferMap inputs = {{"x", std::vector<float>(11)},
                        {"h", {0.25f, 0.25f, 0.25f, 0.25f}}};
    Rng rng(1);
    for (float& v : inputs.at("x")) {
        v = rng.uniform_float(-1, 1);
    }
    const std::uint64_t dios = compile_and_check(k, inputs);
    const auto fixed = scalar::run_baseline(
        k, inputs, scalar::LowerMode::kNaiveFixed,
        TargetSpec::fusion_g3_like());
    EXPECT_LT(dios, fixed.result.cycles);
}

TEST(Normalize, ProducesUnitVector)
{
    const scalar::Kernel k = make_normalize(4);
    const BufferMap inputs = {{"x", {3, 0, 4, 0}}};
    const BufferMap out = scalar::run_reference(k, inputs);
    EXPECT_NEAR(out.at("y")[0], 0.6f, 1e-6f);
    EXPECT_NEAR(out.at("y")[2], 0.8f, 1e-6f);
    compile_and_check(k, inputs);
}

TEST(Inverse2x2, InverseTimesInputIsIdentity)
{
    const scalar::Kernel k = make_inverse2x2();
    Rng rng(4);
    for (int trial = 0; trial < 10; ++trial) {
        BufferMap inputs = {{"A", std::vector<float>(4)}};
        auto& a = inputs.at("A");
        for (float& v : a) {
            v = rng.uniform_float(-2, 2);
        }
        a[0] += 3.0f;  // keep well-conditioned
        a[3] += 3.0f;
        const BufferMap out = scalar::run_reference(k, inputs);
        const auto& b = out.at("B");
        // A * B == I.
        EXPECT_NEAR(a[0] * b[0] + a[1] * b[2], 1.0f, 1e-5f);
        EXPECT_NEAR(a[0] * b[1] + a[1] * b[3], 0.0f, 1e-5f);
        EXPECT_NEAR(a[2] * b[0] + a[3] * b[2], 0.0f, 1e-5f);
        EXPECT_NEAR(a[2] * b[1] + a[3] * b[3], 1.0f, 1e-5f);
    }
    compile_and_check(k, {{"A", {4, 1, 2, 3}}});
}

TEST(Affine3, MatchesHandComputed)
{
    const scalar::Kernel k = make_affine3(2);
    // A = 2*I, b = (1, 1, 1): y = 2x + 1.
    const BufferMap out = scalar::run_reference(
        k, {{"A", {2, 0, 0, 0, 2, 0, 0, 0, 2}},
            {"b", {1, 1, 1}},
            {"x", {1, 2, 3, -1, 0, 4}}});
    EXPECT_EQ(out.at("y"), (std::vector<float>{3, 5, 7, -1, 1, 9}));
}

TEST(Affine3, CompilesAndBeatsFixedBaseline)
{
    const scalar::Kernel k = make_affine3(4);
    Rng rng(9);
    BufferMap inputs = {{"A", std::vector<float>(9)},
                        {"b", std::vector<float>(3)},
                        {"x", std::vector<float>(12)}};
    for (auto* buf : {&inputs.at("A"), &inputs.at("b"), &inputs.at("x")}) {
        for (float& v : *buf) {
            v = rng.uniform_float(-2, 2);
        }
    }
    const std::uint64_t dios = compile_and_check(k, inputs);
    const auto fixed = scalar::run_baseline(
        k, inputs, scalar::LowerMode::kNaiveFixed,
        TargetSpec::fusion_g3_like());
    EXPECT_LT(dios, fixed.result.cycles);
}

TEST(PairwiseDist2, MatchesDirectComputation)
{
    const scalar::Kernel k = make_pairwise_dist2(2, 3);
    const std::vector<float> p = {0, 0, 0, 1, 1, 1};
    const std::vector<float> q = {1, 0, 0, 0, 2, 0, 1, 1, 1};
    const BufferMap out =
        scalar::run_reference(k, {{"P", p}, {"Q", q}});
    const auto& d = out.at("D");
    ASSERT_EQ(d.size(), 6u);
    EXPECT_FLOAT_EQ(d[0], 1.0f);   // (0,0,0) vs (1,0,0)
    EXPECT_FLOAT_EQ(d[1], 4.0f);   // vs (0,2,0)
    EXPECT_FLOAT_EQ(d[2], 3.0f);   // vs (1,1,1)
    EXPECT_FLOAT_EQ(d[5], 0.0f);   // (1,1,1) vs (1,1,1)
    compile_and_check(k, {{"P", p}, {"Q", q}});
}

TEST(Extras, AllKernelsCompileAcrossWidths)
{
    Rng rng(77);
    for (const int width : {2, 4}) {
        CompilerOptions opt = options();
        opt.target.vector_width = width;
        for (const scalar::Kernel& k :
             {make_fir(8, 3), make_normalize(6), make_inverse2x2(),
              make_affine3(2), make_pairwise_dist2(2, 2)}) {
            BufferMap inputs;
            for (const auto& decl :
                 k.arrays_with_role(scalar::ArrayRole::kInput)) {
                std::vector<float> data(static_cast<std::size_t>(
                    scalar::array_length(k, decl)));
                for (float& v : data) {
                    v = rng.uniform_float(0.5f, 2.0f);
                }
                inputs.emplace(decl.name.str(), std::move(data));
            }
            const CompiledKernel compiled = compile_kernel(k, opt);
            EXPECT_NE(compiled.report.validation,
                      Verdict::kNotEquivalent)
                << k.name << " width " << width;
            const auto run = compiled.run(inputs, opt.target);
            const BufferMap want = scalar::run_reference(k, inputs);
            for (const auto& [name, w] : want) {
                const auto& g = run.outputs.at(name);
                for (std::size_t i = 0; i < w.size(); ++i) {
                    const float scale = std::max(
                        {1.0f, std::abs(w[i]), std::abs(g[i])});
                    ASSERT_LE(std::abs(g[i] - w[i]), 1e-3f * scale)
                        << k.name << " width " << width;
                }
            }
        }
    }
}

}  // namespace
}  // namespace diospyros::kernels
