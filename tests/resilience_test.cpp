// Fault-tolerance tests: the degradation ladder, the compile-wide
// Deadline, the fault-injection registry, and the strict numeric
// parsers. Every recovery path is exercised by arming a deterministic
// fault at each pipeline site and asserting (a) the expected rung is
// reached, (b) the CompileResult carries the failure diagnostics, and
// (c) the final output still matches the scalar reference interpreter.

#include <gtest/gtest.h>

#include <cmath>

#include "compiler/driver.h"
#include "support/deadline.h"
#include "support/faults.h"
#include "support/numeric.h"
#include "support/rng.h"

namespace diospyros {
namespace {

using scalar::BufferMap;
using scalar::Kernel;
using scalar::KernelBuilder;

Kernel
vector_add_kernel(std::int64_t n)
{
    KernelBuilder kb("vadd" + std::to_string(n));
    const scalar::IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for("i", scalar::IntExpr::constant(0), size,
                             {scalar::st_store(
                                 "C", i,
                                 KernelBuilder::load("A", i) +
                                     KernelBuilder::load("B", i))}));
    return kb.build();
}

BufferMap
random_inputs(const Kernel& kernel, std::uint64_t seed)
{
    Rng rng(seed);
    BufferMap out;
    for (const auto& decl :
         kernel.arrays_with_role(scalar::ArrayRole::kInput)) {
        std::vector<float> data(static_cast<std::size_t>(
            scalar::array_length(kernel, decl)));
        for (float& v : data) {
            v = rng.uniform_float(-2.0f, 2.0f);
        }
        out.emplace(decl.name.str(), std::move(data));
    }
    return out;
}

CompilerOptions
test_options()
{
    CompilerOptions options;
    options.limits = RunnerLimits{.node_limit = 200'000,
                                  .iter_limit = 10,
                                  .time_limit_seconds = 20.0};
    options.validate = true;
    options.random_check = true;
    return options;
}

/** Compiled output must still match the reference interpreter. */
void
expect_correct(const CompileResult& result, const Kernel& kernel,
               std::uint64_t seed)
{
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.compiled.has_value());
    const BufferMap inputs = random_inputs(kernel, seed);
    const auto run =
        result.compiled->run(inputs, TargetSpec::fusion_g3_like());
    const OutputComparison cmp =
        compare_outputs(run.outputs, scalar::run_reference(kernel, inputs));
    EXPECT_TRUE(cmp.shapes_ok()) << cmp.shape_error;
    EXPECT_LE(cmp.max_abs_error, 1e-3f);
}

/** Clears the global fault registry around every test. */
class Resilience : public ::testing::Test {
  protected:
    void SetUp() override { faults::disarm_all(); }
    void TearDown() override { faults::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsUnlimited)
{
    const Deadline d;
    EXPECT_TRUE(d.is_unlimited());
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remaining_seconds()));
    EXPECT_NO_THROW(d.check("anything"));
}

TEST(DeadlineTest, ZeroBudgetIsExpired)
{
    const Deadline d = Deadline::after_seconds(0.0);
    EXPECT_FALSE(d.is_unlimited());
    EXPECT_TRUE(d.expired());
    EXPECT_THROW(d.check("saturation"), DeadlineExceeded);
    // DeadlineExceeded is a ResourceLimitError (failure taxonomy).
    EXPECT_THROW(d.check("saturation"), ResourceLimitError);
}

TEST(DeadlineTest, GenerousBudgetIsNotExpired)
{
    const Deadline d = Deadline::after_seconds(3600.0);
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remaining_seconds(), 3000.0);
    EXPECT_NO_THROW(d.check("any phase"));
}

TEST(DeadlineTest, CheckNamesThePhase)
{
    try {
        Deadline::after_seconds(0.0).check("extraction");
        FAIL() << "expected DeadlineExceeded";
    } catch (const DeadlineExceeded& e) {
        EXPECT_NE(std::string(e.what()).find("extraction"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Numeric parsing (the dioscc CLI helpers)
// ---------------------------------------------------------------------------

TEST(NumericTest, ParseIntegerStrict)
{
    EXPECT_EQ(parse_integer("42"), 42);
    EXPECT_EQ(parse_integer("-7"), -7);
    EXPECT_FALSE(parse_integer("").has_value());
    EXPECT_FALSE(parse_integer("abc").has_value());
    EXPECT_FALSE(parse_integer("12x").has_value());
    EXPECT_FALSE(parse_integer("0.5").has_value());
    EXPECT_FALSE(parse_integer("99999999999999999999999").has_value());
}

TEST(NumericTest, ParseNumberStrict)
{
    EXPECT_DOUBLE_EQ(*parse_number("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(*parse_number("3"), 3.0);
    EXPECT_DOUBLE_EQ(*parse_number("1e3"), 1000.0);
    EXPECT_FALSE(parse_number("abc").has_value());
    EXPECT_FALSE(parse_number("1.5s").has_value());
    EXPECT_FALSE(parse_number("").has_value());
}

TEST(NumericTest, RequirePositiveRejectsBadInput)
{
    EXPECT_EQ(require_positive_integer("--iters", "12"), 12);
    EXPECT_THROW(require_positive_integer("--iters", "abc"), UserError);
    EXPECT_THROW(require_positive_integer("--iters", "0"), UserError);
    EXPECT_THROW(require_positive_integer("--iters", "-3"), UserError);
    EXPECT_DOUBLE_EQ(require_positive_number("--timeout", "0.5"), 0.5);
    EXPECT_THROW(require_positive_number("--timeout", "0"), UserError);
    EXPECT_THROW(require_positive_number("--timeout", "x"), UserError);
    EXPECT_EQ(require_nonnegative_integer("--seed", "0"), 0);
    EXPECT_THROW(require_nonnegative_integer("--seed", "-1"), UserError);
}

// ---------------------------------------------------------------------------
// Fault registry
// ---------------------------------------------------------------------------

TEST_F(Resilience, FaultSpecParsing)
{
    const faults::FaultSpec plain = faults::parse_spec("runner.iter");
    EXPECT_EQ(plain.site, "runner.iter");
    EXPECT_EQ(plain.nth, 1);
    EXPECT_EQ(plain.count, 1);

    const faults::FaultSpec nth = faults::parse_spec("x:3");
    EXPECT_EQ(nth.nth, 3);
    EXPECT_EQ(nth.count, 1);

    const faults::FaultSpec windowed = faults::parse_spec("x:2:5");
    EXPECT_EQ(windowed.nth, 2);
    EXPECT_EQ(windowed.count, 5);

    const faults::FaultSpec forever = faults::parse_spec("x:1:*");
    EXPECT_EQ(forever.count, -1);

    EXPECT_THROW(faults::parse_spec(""), UserError);
    EXPECT_THROW(faults::parse_spec(":1"), UserError);
    EXPECT_THROW(faults::parse_spec("x:abc"), UserError);
    EXPECT_THROW(faults::parse_spec("x:0"), UserError);
    EXPECT_THROW(faults::parse_spec("x:1:0"), UserError);
}

TEST_F(Resilience, FaultFiresOnNthHitOnly)
{
    faults::arm("test.site", 2, 1);
    EXPECT_TRUE(faults::any_armed());
    EXPECT_NO_THROW(DIOS_FAULT_POINT("test.site"));       // hit 1
    EXPECT_THROW(DIOS_FAULT_POINT("test.site"),           // hit 2
                 faults::InjectedFault);
    EXPECT_NO_THROW(DIOS_FAULT_POINT("test.site"));       // hit 3
    EXPECT_EQ(faults::hit_count("test.site"), 3u);
    EXPECT_NO_THROW(DIOS_FAULT_POINT("other.site"));
}

TEST_F(Resilience, FaultWindowAndForever)
{
    faults::arm("win.site", 1, 2);
    EXPECT_THROW(DIOS_FAULT_POINT("win.site"), faults::InjectedFault);
    EXPECT_THROW(DIOS_FAULT_POINT("win.site"), faults::InjectedFault);
    EXPECT_NO_THROW(DIOS_FAULT_POINT("win.site"));

    faults::arm("always.site", 1, -1);
    for (int i = 0; i < 5; ++i) {
        EXPECT_THROW(DIOS_FAULT_POINT("always.site"),
                     faults::InjectedFault);
    }
}

TEST_F(Resilience, DisarmedRegistryIsInert)
{
    EXPECT_FALSE(faults::any_armed());
    EXPECT_FALSE(faults::enabled());
    // Hit counters are not even tracked while disabled.
    DIOS_FAULT_POINT("untracked.site");
    EXPECT_EQ(faults::hit_count("untracked.site"), 0u);
}

TEST_F(Resilience, InjectedFaultCarriesSiteAndHit)
{
    faults::arm("info.site", 1, 1);
    try {
        DIOS_FAULT_POINT("info.site");
        FAIL() << "expected InjectedFault";
    } catch (const faults::InjectedFault& e) {
        EXPECT_EQ(e.site(), "info.site");
        EXPECT_EQ(e.hit(), 1u);
        EXPECT_NE(std::string(e.what()).find("info.site"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

TEST_F(Resilience, NoFaultsMeansNoFallback)
{
    const Kernel kernel = vector_add_kernel(8);
    const CompileResult result =
        compile_kernel_resilient(kernel, test_options());
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.fallback_level, 0);
    EXPECT_TRUE(result.error.empty());
    ASSERT_EQ(result.attempts.size(), 1u);
    EXPECT_TRUE(result.attempts[0].error.empty());
    EXPECT_EQ(result.report().fallback_level, 0);
    EXPECT_TRUE(result.report().error.empty());
    EXPECT_EQ(result.report().validation, Verdict::kEquivalent);
    expect_correct(result, kernel, 1);
}

/** Each pipeline fault site, armed once, must cost exactly one rung. */
class FaultSiteLadder : public Resilience,
                        public ::testing::WithParamInterface<const char*> {
};

TEST_P(FaultSiteLadder, SingleFaultFallsBackOneRung)
{
    const std::string site = GetParam();
    faults::arm(site, 1, 1);

    const Kernel kernel = vector_add_kernel(8);
    const CompileResult result =
        compile_kernel_resilient(kernel, test_options());

    ASSERT_TRUE(result.ok) << site << ": " << result.error;
    EXPECT_EQ(result.fallback_level, 1) << site;
    ASSERT_EQ(result.attempts.size(), 2u) << site;
    EXPECT_EQ(result.attempts[0].level, 0);
    EXPECT_NE(result.attempts[0].error.find(site), std::string::npos)
        << "diagnostic should name the injected site, got: "
        << result.attempts[0].error;
    EXPECT_TRUE(result.attempts[1].error.empty());
    // The report mirrors the diagnostics for --json consumers.
    EXPECT_EQ(result.report().fallback_level, 1);
    EXPECT_EQ(result.report().attempts.size(), 2u);
    EXPECT_EQ(result.report().error, result.attempts[0].error);
    expect_correct(result, kernel, 7);
}

INSTANTIATE_TEST_SUITE_P(PipelineSites, FaultSiteLadder,
                         ::testing::Values("runner.iter", "extract.build",
                                           "lower.term", "emit.machine",
                                           "validate.exact"));

TEST_F(Resilience, RepeatedRunnerFaultReachesScalarRung)
{
    // Fires on the runner's first two entries: rung 0 and rung 1 both
    // die in saturation; rung 2 (scalar rules, still saturating) gets
    // hit 3 and survives.
    faults::arm("runner.iter", 1, 2);
    const Kernel kernel = vector_add_kernel(8);
    const CompileResult result =
        compile_kernel_resilient(kernel, test_options());
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fallback_level, 2);
    ASSERT_EQ(result.attempts.size(), 3u);
    EXPECT_FALSE(result.attempts[0].error.empty());
    EXPECT_FALSE(result.attempts[1].error.empty());
    expect_correct(result, kernel, 11);
}

TEST_F(Resilience, PersistentRunnerFaultReachesDirectScalarRung)
{
    // Every saturation attempt dies; only the e-graph-free direct rung
    // can succeed.
    faults::arm("runner.iter", 1, -1);
    const Kernel kernel = vector_add_kernel(8);
    const CompileResult result =
        compile_kernel_resilient(kernel, test_options());
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fallback_level, 3);
    ASSERT_EQ(result.attempts.size(), 4u);
    expect_correct(result, kernel, 13);
}

TEST_F(Resilience, PersistentBackendFaultFailsWithoutThrowing)
{
    // A fault that also kills the final rung: the resilient driver must
    // report failure — with full diagnostics — rather than throw.
    faults::arm("lower.term", 1, -1);
    const Kernel kernel = vector_add_kernel(8);
    CompileResult result;
    ASSERT_NO_THROW(
        result = compile_kernel_resilient(kernel, test_options()));
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.compiled.has_value());
    EXPECT_NE(result.error.find("lower.term"), std::string::npos);
    ASSERT_EQ(result.attempts.size(), 4u);
    for (const AttemptDiagnostic& a : result.attempts) {
        EXPECT_FALSE(a.error.empty());
    }
}

TEST_F(Resilience, FaultSpecsInOptionsArmTheRegistry)
{
    CompilerOptions options = test_options();
    options.fault_specs = {"extract.build"};
    const Kernel kernel = vector_add_kernel(8);
    const CompileResult result = compile_kernel_resilient(kernel, options);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fallback_level, 1);
    expect_correct(result, kernel, 17);
}

TEST_F(Resilience, MalformedFaultSpecFailsGracefully)
{
    CompilerOptions options = test_options();
    options.fault_specs = {"runner.iter:notanumber"};
    CompileResult result;
    ASSERT_NO_THROW(result = compile_kernel_resilient(
                        vector_add_kernel(4), options));
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
}

TEST_F(Resilience, UserErrorDoesNotWalkTheLadder)
{
    // An invalid kernel fails identically at every rung — the driver
    // must report it once instead of burning budget on retries. This
    // kernel reads an array it never declared, which lifting rejects.
    KernelBuilder kb("bad");
    const scalar::IntRef size = kb.param("n", 4);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for(
        "i", scalar::IntExpr::constant(0), size,
        {scalar::st_store("C", i, KernelBuilder::load("Z", i))}));

    const CompileResult result =
        compile_kernel_resilient(kb.build(), test_options());
    EXPECT_FALSE(result.ok);
    ASSERT_EQ(result.attempts.size(), 1u);
    EXPECT_NE(result.error.find("user error"), std::string::npos);
    EXPECT_NE(result.error.find("undeclared array"), std::string::npos);
}

TEST_F(Resilience, ExpiredDeadlineDegradesToDirectScalar)
{
    // A hopeless global deadline: rungs 0-2 die at their first
    // checkpoint; the deadline-exempt direct rung still delivers a
    // correct kernel.
    CompilerOptions options = test_options();
    options.deadline_seconds = 1e-9;
    const Kernel kernel = vector_add_kernel(8);
    const CompileResult result = compile_kernel_resilient(kernel, options);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fallback_level, 3);
    EXPECT_NE(result.report().error.find("deadline"), std::string::npos);
    expect_correct(result, kernel, 19);
}

TEST_F(Resilience, DeadlineExpiringMidSearchIsNotSaturation)
{
    // Regression: when the compile-wide deadline expires during the
    // runner's search phase, the iteration may change nothing — because
    // later rules were never searched, not because the graph saturated.
    // The runner used to declare kSaturated before consulting the budget.
    EGraph graph(false);
    graph.add_term(Term::parse("(+ (Get a 0) (Get a 1))"));
    graph.rebuild();
    std::vector<Rewrite> rules;
    rules.push_back(
        Rewrite::make("never-fires", "(sqrt (sqrt ?x))", "(sqrt (sqrt ?x))"));
    rules.push_back(
        Rewrite::make("would-fire", "(+ ?a ?b)", "(+ ?b ?a)"));
    const Runner runner(RunnerLimits{.node_limit = 100'000,
                                     .iter_limit = 100,
                                     .time_limit_seconds = 60.0});
    const RunnerReport report =
        runner.run(graph, rules, Deadline::after_seconds(0.0));
    EXPECT_EQ(report.stop_reason, StopReason::kDeadline);
    // The graph is still clean and usable for partial extraction.
    EXPECT_TRUE(graph.is_clean());
}

TEST_F(Resilience, StrictCompileThrowsOnDeadline)
{
    CompilerOptions options = test_options();
    options.deadline_seconds = 1e-9;
    EXPECT_THROW(compile_kernel(vector_add_kernel(8), options),
                 ResourceLimitError);
}

TEST_F(Resilience, DirectScalarRungMatchesReferenceOnUnalignedKernel)
{
    // The always-succeeds rung on a kernel whose output needs padding.
    faults::arm("runner.iter", 1, -1);
    const Kernel kernel = vector_add_kernel(5);
    const CompileResult result =
        compile_kernel_resilient(kernel, test_options());
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fallback_level, 3);
    const BufferMap inputs = random_inputs(kernel, 23);
    const auto run =
        result.compiled->run(inputs, TargetSpec::fusion_g3_like());
    EXPECT_EQ(run.outputs.at("C").size(), 5u);
    const OutputComparison cmp = compare_outputs(
        run.outputs, scalar::run_reference(kernel, inputs));
    EXPECT_TRUE(cmp.shapes_ok()) << cmp.shape_error;
    EXPECT_LE(cmp.max_abs_error, 1e-3f);
}

// ---------------------------------------------------------------------------
// Output comparison helper
// ---------------------------------------------------------------------------

TEST(OutputComparisonTest, DetectsMissingAndMisSizedBuffers)
{
    const BufferMap want = {{"C", {1.0f, 2.0f, 3.0f}}};
    const OutputComparison missing = compare_outputs({}, want);
    EXPECT_FALSE(missing.shapes_ok());
    EXPECT_NE(missing.shape_error.find("missing output 'C'"),
              std::string::npos);

    const BufferMap short_buf = {{"C", {1.0f, 2.0f}}};
    const OutputComparison mis_sized = compare_outputs(short_buf, want);
    EXPECT_FALSE(mis_sized.shapes_ok());
    EXPECT_NE(mis_sized.shape_error.find("expected 3"), std::string::npos);

    const BufferMap exact = {{"C", {1.0f, 2.5f, 3.0f}}};
    const OutputComparison ok = compare_outputs(exact, want);
    EXPECT_TRUE(ok.shapes_ok());
    EXPECT_FLOAT_EQ(ok.max_abs_error, 0.5f);
}

}  // namespace
}  // namespace diospyros
