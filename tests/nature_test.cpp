// Tests for the Nature vendor-library substitute: correctness against the
// reference interpreter across sizes (including awkward non-multiple-of-W
// shapes), availability rules, and the performance characteristics the
// paper describes (fast on large aligned shapes, weak on small ones).

#include <gtest/gtest.h>

#include "kernels/kernels.h"
#include "nature/nature.h"
#include "scalar/lower.h"

namespace diospyros::nature {
namespace {

using kernels::make_conv2d;
using kernels::make_inputs;
using kernels::make_matmul;
using scalar::BufferMap;

void
expect_match(const BufferMap& got, const BufferMap& want, float tol)
{
    ASSERT_EQ(got.size(), want.size());
    for (const auto& [name, w] : want) {
        const auto& g = got.at(name);
        ASSERT_EQ(g.size(), w.size()) << name;
        for (std::size_t i = 0; i < w.size(); ++i) {
            const float scale =
                std::max({1.0f, std::abs(w[i]), std::abs(g[i])});
            ASSERT_LE(std::abs(g[i] - w[i]), tol * scale)
                << name << "[" << i << "]";
        }
    }
}

class NatureMatMul
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(NatureMatMul, MatchesReference)
{
    const auto [n, m, p] = GetParam();
    const scalar::Kernel kernel = make_matmul(n, m, p);
    const BufferMap inputs = make_inputs(kernel, 17);
    const auto run =
        run_nature(kernel, inputs, TargetSpec::fusion_g3_like());
    expect_match(run.outputs, scalar::run_reference(kernel, inputs),
                 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NatureMatMul,
    ::testing::Values(std::make_tuple(2, 2, 2), std::make_tuple(2, 3, 3),
                      std::make_tuple(3, 3, 3), std::make_tuple(4, 4, 4),
                      std::make_tuple(5, 7, 6), std::make_tuple(8, 8, 8),
                      std::make_tuple(10, 10, 10),
                      std::make_tuple(1, 1, 1),
                      std::make_tuple(16, 16, 16)));

class NatureConv
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(NatureConv, MatchesReference)
{
    const auto [ir, ic, fr, fc] = GetParam();
    const scalar::Kernel kernel = make_conv2d(ir, ic, fr, fc);
    const BufferMap inputs = make_inputs(kernel, 23);
    const auto run =
        run_nature(kernel, inputs, TargetSpec::fusion_g3_like());
    expect_match(run.outputs, scalar::run_reference(kernel, inputs),
                 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NatureConv,
    ::testing::Values(std::make_tuple(3, 3, 2, 2),
                      std::make_tuple(3, 3, 3, 3),
                      std::make_tuple(3, 5, 3, 3),
                      std::make_tuple(4, 4, 3, 3),
                      std::make_tuple(8, 8, 3, 3),
                      std::make_tuple(10, 10, 4, 4),
                      std::make_tuple(16, 16, 2, 2),
                      std::make_tuple(5, 4, 1, 1),
                      std::make_tuple(2, 2, 4, 4)));

TEST(NatureAvailability, OnlyMatMulAndConv)
{
    EXPECT_TRUE(supports(make_matmul(3, 3, 3)));
    EXPECT_TRUE(supports(make_conv2d(3, 3, 2, 2)));
    EXPECT_FALSE(supports(kernels::make_qprod()));
    EXPECT_FALSE(supports(kernels::make_qrdecomp(3)));
    EXPECT_THROW(run_nature(kernels::make_qprod(), {},
                            TargetSpec::fusion_g3_like()),
                 UserError);
}

TEST(NaturePerformance, BeatsFixedNaiveOnLargeAlignedMatMul)
{
    // §5.4: the library shines on shapes that fill vector lanes.
    const TargetSpec target = TargetSpec::fusion_g3_like();
    const scalar::Kernel kernel = make_matmul(16, 16, 16);
    const BufferMap inputs = make_inputs(kernel, 3);
    const auto nature = run_nature(kernel, inputs, target);
    const auto fixed = scalar::run_baseline(
        kernel, inputs, scalar::LowerMode::kNaiveFixed, target);
    EXPECT_LT(nature.result.cycles, fixed.result.cycles);
}

TEST(NaturePerformance, ControlOverheadDominatesTinyMatMul)
{
    // §5.4: "even highly-optimized code such as Nature can perform poorly
    // on small kernels, such as the 2x2 square matrix product, due to the
    // control overhead of the parametrized unrolling."
    const TargetSpec target = TargetSpec::fusion_g3_like();
    const scalar::Kernel kernel = make_matmul(2, 2, 2);
    const BufferMap inputs = make_inputs(kernel, 4);
    const auto nature = run_nature(kernel, inputs, target);
    const auto fixed = scalar::run_baseline(
        kernel, inputs, scalar::LowerMode::kNaiveFixed, target);
    EXPECT_GT(nature.result.cycles, fixed.result.cycles);
}

TEST(NaturePerformance, VectorPathActuallyVectorizes)
{
    const TargetSpec target = TargetSpec::fusion_g3_like();
    const scalar::Kernel kernel = make_matmul(8, 8, 8);
    const auto run = run_nature(kernel, make_inputs(kernel, 5), target);
    // 8x8x8: every column block is vectorized -> 8*2*8 = 128 vector MACs.
    EXPECT_EQ(run.result.count(Opcode::kVMac), 128u);
    EXPECT_EQ(run.result.count(Opcode::kFMul), 0u);  // no scalar tail
}

}  // namespace
}  // namespace diospyros::nature
