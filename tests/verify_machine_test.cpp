// Machine-program verifier + symbolic machine-level translation
// validation (analysis/verify_machine.h): the M-code matrix (one
// deliberately mutated program per diagnostic), the scheduler-bug and
// emit-bug acceptance scenarios from DESIGN.md §5i — each injected
// miscompile must slip past every pre-existing gate and be caught by
// exactly this layer — and a fuzzed differential proving scheduled and
// unscheduled programs simulate byte-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "analysis/verify_machine.h"
#include "analysis/verify_vir.h"
#include "compiler/driver.h"
#include "kernels/kernels.h"
#include "machine/schedule.h"
#include "machine/sim.h"
#include "support/error.h"
#include "support/rng.h"

namespace diospyros {
namespace {

using analysis::DiagEngine;

TargetSpec
width4()
{
    TargetSpec t = TargetSpec::fusion_g3_like();
    t.vector_width = 4;
    return t;
}

/** Runs the structural verifier and returns its diagnostics. */
DiagEngine
verify(const Program& p, const TargetSpec& t,
       const vir::CompiledLayout* layout = nullptr)
{
    DiagEngine diags;
    analysis::verify_machine_program(p, t, diags, layout);
    return diags;
}

// --- Known-good programs pass cleanly -----------------------------------------

TEST(VerifyMachine, StartupSelfCheckPasses)
{
    EXPECT_EQ(analysis::machine_verifier_self_check(), "");
}

TEST(VerifyMachine, StraightLineProgramPasses)
{
    ProgramBuilder pb;
    const int a = pb.fresh_vec();
    const int b = pb.fresh_vec();
    const int c = pb.fresh_vec();
    const int f = pb.fresh_float();
    pb.vsplat(a, 1.5f);
    pb.vsplat(b, 2.5f);
    pb.vbinop(Opcode::kVAdd, c, a, b);
    pb.shuf(c, c, {3, 2, 1, 0});
    pb.vextract(f, c, 0);
    pb.halt();
    const Program p = pb.finish();

    const DiagEngine diags = verify(p, width4());
    EXPECT_FALSE(diags.has_errors()) << diags.render_text();
}

TEST(VerifyMachine, BranchingProgramWithDefsOnAllPathsPasses)
{
    // f0 is defined on both sides of the diamond, so the meet still
    // guarantees it at the join: no M001.
    ProgramBuilder pb;
    const int i0 = pb.fresh_int();
    const int i1 = pb.fresh_int();
    const int f0 = pb.fresh_float();
    const int f1 = pb.fresh_float();
    auto els = pb.new_label();
    auto join = pb.new_label();
    pb.mov_i(i0, 0);
    pb.mov_i(i1, 1);
    pb.branch_lt(i0, i1, els);
    pb.fmov_i(f0, 1.0f);
    pb.jump(join);
    pb.bind(els);
    pb.fmov_i(f0, 2.0f);
    pb.bind(join);
    pb.fbinop(Opcode::kFAdd, f1, f0, f0);
    pb.halt();
    const Program p = pb.finish();

    const DiagEngine diags = verify(p, width4());
    EXPECT_FALSE(diags.has_errors()) << diags.render_text();
}

// --- M001: read before guaranteed definition -----------------------------------

TEST(VerifyMachine, M001ReadOfNeverWrittenRegister)
{
    ProgramBuilder pb;
    const int a = pb.fresh_float();
    const int b = pb.fresh_float();
    const int d = pb.fresh_float();
    pb.fbinop(Opcode::kFMul, d, a, b);  // f0, f1 never defined
    pb.halt();
    const DiagEngine diags = verify(pb.finish(), width4());
    EXPECT_TRUE(diags.has_code("M001")) << diags.render_text();
}

TEST(VerifyMachine, M001DefinitionMissingOnOnePath)
{
    // The definition of f0 sits on the fall-through path only; the taken
    // branch reaches the use with f0 unassigned. Must-analysis (meet =
    // intersection) has to catch this even though *a* path defines it.
    ProgramBuilder pb;
    const int i0 = pb.fresh_int();
    const int i1 = pb.fresh_int();
    const int f0 = pb.fresh_float();
    const int f1 = pb.fresh_float();
    auto skip = pb.new_label();
    pb.mov_i(i0, 0);
    pb.mov_i(i1, 1);
    pb.branch_lt(i0, i1, skip);
    pb.fmov_i(f0, 1.0f);
    pb.bind(skip);
    pb.fbinop(Opcode::kFAdd, f1, f0, f0);
    pb.halt();
    const DiagEngine diags = verify(pb.finish(), width4());
    EXPECT_TRUE(diags.has_code("M001")) << diags.render_text();
}

TEST(VerifyMachine, M001AccumulatorReadsItsDestination)
{
    // vmac reads its destination (acc += a * b): an uninitialized
    // accumulator is a read-before-def even though dst "looks like" a
    // pure definition.
    ProgramBuilder pb;
    const int a = pb.fresh_vec();
    const int b = pb.fresh_vec();
    const int acc = pb.fresh_vec();
    pb.vsplat(a, 1.0f);
    pb.vsplat(b, 2.0f);
    pb.vmac(acc, a, b);  // acc never initialized
    pb.halt();
    const DiagEngine diags = verify(pb.finish(), width4());
    EXPECT_TRUE(diags.has_code("M001")) << diags.render_text();
}

// --- M002: register outside the declared file ----------------------------------

TEST(VerifyMachine, M002RegisterBeyondDeclaredFile)
{
    ProgramBuilder pb;
    const int f = pb.fresh_float();
    pb.fmov_i(f, 1.0f);
    pb.halt();
    Program p = pb.finish();
    p.num_float_regs = 0;  // the program claims an empty float file
    const DiagEngine diags = verify(p, width4());
    EXPECT_TRUE(diags.has_code("M002")) << diags.render_text();
}

// --- M003: opcode/operand disagreement ------------------------------------------

TEST(VerifyMachine, M003RequiredOperandMissing)
{
    ProgramBuilder pb;
    const int f = pb.fresh_float();
    pb.fmov_i(f, 1.0f);
    pb.fbinop(Opcode::kFAdd, f, f, f);
    pb.halt();
    Program p = pb.finish();
    p.code[1].b = -1;  // fadd with no second source
    const DiagEngine diags = verify(p, width4());
    EXPECT_TRUE(diags.has_code("M003")) << diags.render_text();
}

TEST(VerifyMachine, M003StrayOperandOnHalt)
{
    ProgramBuilder pb;
    pb.halt();
    Program p = pb.finish();
    p.code[0].dst = 0;  // halt writes nothing
    p.num_int_regs = 1;
    const DiagEngine diags = verify(p, width4());
    EXPECT_TRUE(diags.has_code("M003")) << diags.render_text();
}

// --- M004: lane out of bounds -----------------------------------------------------

TEST(VerifyMachine, M004ShuffleLaneOutOfBounds)
{
    ProgramBuilder pb;
    const int v = pb.fresh_vec();
    pb.vsplat(v, 1.0f);
    pb.shuf(v, v, {0, 1, 2, 3});
    pb.halt();
    Program p = pb.finish();
    p.code[1].lanes[0] = 4;  // width is 4; valid shuf lanes are [0, 4)
    const DiagEngine diags = verify(p, width4());
    EXPECT_TRUE(diags.has_code("M004")) << diags.render_text();
}

TEST(VerifyMachine, M004SelectLaneBeyondConcat)
{
    // sel indexes the 2x-width concatenation, so 7 is legal and 8 is not.
    ProgramBuilder pb;
    const int a = pb.fresh_vec();
    const int b = pb.fresh_vec();
    const int d = pb.fresh_vec();
    pb.vsplat(a, 1.0f);
    pb.vsplat(b, 2.0f);
    pb.sel(d, a, b, {0, 7, 1, 6});
    pb.halt();
    Program p = pb.finish();
    EXPECT_FALSE(verify(p, width4()).has_errors());
    p.code[2].lanes[1] = 8;
    const DiagEngine diags = verify(p, width4());
    EXPECT_TRUE(diags.has_code("M004")) << diags.render_text();
}

// --- M005: branch target out of range ---------------------------------------------

TEST(VerifyMachine, M005DanglingJumpTarget)
{
    ProgramBuilder pb;
    pb.halt();
    Program p = pb.finish();
    Instr jump;
    jump.op = Opcode::kJump;
    jump.imm = 99;
    p.code.insert(p.code.begin(), jump);
    const DiagEngine diags = verify(p, width4());
    EXPECT_TRUE(diags.has_code("M005")) << diags.render_text();
}

// --- M006: halt not guaranteed ------------------------------------------------------

TEST(VerifyMachine, M006ExecutionFallsOffTheEnd)
{
    ProgramBuilder pb;
    const int v = pb.fresh_vec();
    pb.vsplat(v, 1.0f);  // no halt
    const DiagEngine diags = verify(pb.finish(), width4());
    EXPECT_TRUE(diags.has_code("M006")) << diags.render_text();
}

TEST(VerifyMachine, M006InfiniteLoopNeverReachesHalt)
{
    ProgramBuilder pb;
    auto top = pb.new_label();
    pb.bind(top);
    pb.jump(top);
    pb.halt();  // unreachable from the loop
    const DiagEngine diags = verify(pb.finish(), width4());
    EXPECT_TRUE(diags.has_code("M006")) << diags.render_text();
}

// --- M007: memory access outside every segment ---------------------------------------

TEST(VerifyMachine, M007StoreBeyondEveryArrayExtent)
{
    const CompilerOptions options = []() {
        CompilerOptions o;
        o.target = width4();
        return o;
    }();
    const CompiledKernel compiled =
        compile_kernel(kernels::make_matmul(2, 2, 2), options);
    EXPECT_FALSE(
        verify(compiled.machine, options.target, &compiled.layout)
            .has_errors());

    Program p = compiled.machine;
    bool mutated = false;
    for (auto& instr : p.code) {
        if ((instr.op == Opcode::kVStore || instr.op == Opcode::kFStore) &&
            instr.a < 0) {
            instr.imm = 1'000'000;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated) << "no absolute store found in matmul machine code";
    const DiagEngine diags = verify(p, options.target, &compiled.layout);
    EXPECT_TRUE(diags.has_code("M007")) << diags.render_text();
}

// --- M008: scheduler preservation ------------------------------------------------------

/** before: f0=1; f1=f0*f0; f0=3 (WAR with the read); f2=f0+f1; halt */
Program
war_pair_program()
{
    ProgramBuilder pb;
    const int f0 = pb.fresh_float();
    const int f1 = pb.fresh_float();
    const int f2 = pb.fresh_float();
    pb.fmov_i(f0, 1.0f);
    pb.fbinop(Opcode::kFMul, f1, f0, f0);
    pb.fmov_i(f0, 3.0f);
    pb.fbinop(Opcode::kFAdd, f2, f0, f1);
    pb.halt();
    return pb.finish();
}

TEST(VerifyMachine, M008WarViolatingSwapIsCaught)
{
    // A "scheduler" that swaps instructions 1 and 2 violates the
    // write-after-read dependence on f0: the multiply now sees 3.0, not
    // 1.0. Crucially the swapped program is structurally impeccable —
    // every register is defined before use, all operands agree with
    // their opcodes — so M001-M007 all pass and only the independent
    // dependence-graph replay (M008) can catch it.
    const Program before = war_pair_program();
    Program after = before;
    std::swap(after.code[1], after.code[2]);
    EXPECT_FALSE(verify(after, width4()).has_errors());

    ScheduleStats stats;
    stats.applied = true;
    stats.moved = 2;
    stats.order = {0, 2, 1, 3};

    DiagEngine diags;
    EXPECT_FALSE(analysis::check_schedule_preservation(
        before, after, stats, width4(), diags));
    EXPECT_TRUE(diags.has_code("M008")) << diags.render_text();

    // The injected bug is a real miscompile: the two programs disagree
    // when simulated.
    const TargetSpec t = width4();
    Memory m1(16), m2(16);
    Simulator sim(t);
    Program b2 = before, a2 = after;
    b2.code.insert(b2.code.end() - 1,
                   Instr{Opcode::kFStore, -1, -1, 2, 0, 0.0f, {}});
    a2.code.insert(a2.code.end() - 1,
                   Instr{Opcode::kFStore, -1, -1, 2, 0, 0.0f, {}});
    sim.run(b2, m1);
    sim.run(a2, m2);
    EXPECT_NE(m1.at(0), m2.at(0));
}

TEST(VerifyMachine, M008TamperedInstructionUnderIdentityOrder)
{
    const Program before = war_pair_program();
    Program after = before;
    after.code[0].fimm = 99.0f;  // not a permutation: contents differ
    ScheduleStats stats;
    stats.applied = true;
    stats.order = {0, 1, 2, 3};
    DiagEngine diags;
    EXPECT_FALSE(analysis::check_schedule_preservation(
        before, after, stats, width4(), diags));
    EXPECT_TRUE(diags.has_code("M008")) << diags.render_text();
}

TEST(VerifyMachine, M008OrderMustBeABijection)
{
    const Program before = war_pair_program();
    ScheduleStats stats;
    stats.applied = true;
    stats.order = {0, 0, 2, 3};
    DiagEngine diags;
    EXPECT_FALSE(analysis::check_schedule_preservation(
        before, before, stats, width4(), diags));
    EXPECT_TRUE(diags.has_code("M008")) << diags.render_text();
}

TEST(VerifyMachine, EmptyOrderRequiresIdenticalPrograms)
{
    const Program before = war_pair_program();
    ScheduleStats stats;  // applied=false, order empty
    DiagEngine ok;
    EXPECT_TRUE(analysis::check_schedule_preservation(
        before, before, stats, width4(), ok));

    Program after = before;
    after.code[0].fimm = 2.0f;
    DiagEngine bad;
    EXPECT_FALSE(analysis::check_schedule_preservation(
        before, after, stats, width4(), bad));
    EXPECT_TRUE(bad.has_code("M008")) << bad.render_text();
}

TEST(VerifyMachine, RealSchedulerOutputIsProvedPreserving)
{
    const CompilerOptions options = []() {
        CompilerOptions o;
        o.target = width4();
        return o;
    }();
    const CompiledKernel compiled =
        compile_kernel(kernels::make_conv2d(3, 3, 2, 2), options);
    ScheduleStats stats;
    const Program rescheduled =
        schedule_program(compiled.machine, options.target, &stats);
    DiagEngine diags;
    EXPECT_TRUE(analysis::check_schedule_preservation(
        compiled.machine, rescheduled, stats, options.target, diags))
        << diags.render_text();
}

// --- Emit-bug acceptance: symbolic validation + witness ---------------------------------

TEST(VerifyMachine, WrongShuffleLaneYieldsNotEquivalentWithWitness)
{
    // The scenario the whole subsystem exists for: an emit bug that
    // produces structurally flawless machine code computing the wrong
    // function. We compile a conv2d, check every pre-existing gate is
    // green, then flip one in-bounds shuffle/select lane and show that
    // (a) the structural verifier still passes, (b) term-level
    // validation still passes (it never sees machine code), and (c) the
    // machine-level symbolic validator alone reports kNotEquivalent,
    // with a concrete minimized counterexample attached.
    CompilerOptions options;
    options.target = width4();
    options.validate = true;
    options.random_check = true;
    const scalar::Kernel kernel = kernels::make_conv2d(3, 3, 2, 2);
    const CompiledKernel compiled = compile_kernel(kernel, options);

    // Baseline: every gate green, including the new one.
    ASSERT_EQ(compiled.report.validation, Verdict::kEquivalent);
    ASSERT_TRUE(compiled.report.random_check_passed);
    ASSERT_TRUE(compiled.report.machine_validated);
    ASSERT_EQ(compiled.report.machine_validation, Verdict::kEquivalent)
        << compiled.report.machine_witness;

    const auto [padded_spec, slots] =
        pad_lifted_spec(compiled.spec, options.target.vector_width);

    // Try single-lane perturbations until one provably changes the
    // function (some lanes read padding zeros and are semantically
    // inert; the validator must stay silent on those).
    const int width = options.target.vector_width;
    bool caught = false;
    for (std::size_t i = 0; i < compiled.machine.code.size() && !caught;
         ++i) {
        const Opcode op = compiled.machine.code[i].op;
        if (op != Opcode::kShuf && op != Opcode::kSel) continue;
        const int limit = (op == Opcode::kSel) ? 2 * width : width;
        for (int lane = 0; lane < width && !caught; ++lane) {
            Program mutant = compiled.machine;
            auto& lanes = mutant.code[i].lanes;
            lanes[lane] =
                static_cast<std::int16_t>((lanes[lane] + 1) % limit);
            if (mutant.code[i].lanes == compiled.machine.code[i].lanes)
                continue;

            // (a) structurally flawless.
            ASSERT_FALSE(
                verify(mutant, options.target, &compiled.layout)
                    .has_errors());

            const analysis::MachineValidation v =
                analysis::validate_machine_translation(
                    padded_spec, slots, mutant, compiled.layout,
                    options.target);
            if (v.verdict != Verdict::kNotEquivalent) continue;

            // (c) caught, with an engaged concrete witness.
            ASSERT_TRUE(v.witness.has_value());
            EXPECT_FALSE(v.witness->output_array.empty());
            EXPECT_NE(v.witness->spec_value, v.witness->machine_value);
            const std::string rendered = v.witness->to_string();
            EXPECT_NE(rendered.find("spec="), std::string::npos) << rendered;
            EXPECT_NE(rendered.find("machine="), std::string::npos)
                << rendered;

            // The witness is honest: running the mutant on the claimed
            // inputs reproduces the divergence against the scalar
            // reference.
            scalar::BufferMap inputs;
            for (const auto& [name, values] : v.witness->inputs) {
                std::vector<float> f(values.begin(), values.end());
                inputs[name] = std::move(f);
            }
            Memory memory = compiled.layout.make_memory(inputs);
            Simulator sim(options.target);
            sim.run(mutant, memory);
            const scalar::BufferMap got =
                compiled.layout.read_outputs(memory);
            const scalar::BufferMap want =
                scalar::run_reference(kernel, inputs);
            const float machine_got =
                got.at(v.witness->output_array)
                    .at(static_cast<std::size_t>(v.witness->output_index));
            const float spec_want =
                want.at(v.witness->output_array)
                    .at(static_cast<std::size_t>(v.witness->output_index));
            EXPECT_NEAR(machine_got,
                        static_cast<float>(v.witness->machine_value),
                        1e-4f * std::max(1.0f, std::abs(machine_got)));
            EXPECT_NEAR(spec_want,
                        static_cast<float>(v.witness->spec_value),
                        1e-4f * std::max(1.0f, std::abs(spec_want)));
            caught = true;
        }
    }
    EXPECT_TRUE(caught)
        << "no lane perturbation was provably caught as kNotEquivalent";
}

TEST(VerifyMachine, ControlFlowDegradesToUnknownNotWrong)
{
    CompilerOptions options;
    options.target = width4();
    const CompiledKernel compiled =
        compile_kernel(kernels::make_matmul(2, 2, 2), options);
    const auto [padded_spec, slots] =
        pad_lifted_spec(compiled.spec, options.target.vector_width);

    // A jump to the next instruction changes nothing semantically, but
    // the symbolic executor only handles straight-line code: the honest
    // answer is kUnknown with a reason, never kNotEquivalent.
    Program mutant = compiled.machine;
    Instr jump;
    jump.op = Opcode::kJump;
    jump.imm = 1;
    mutant.code.insert(mutant.code.begin(), jump);
    // Fix up absolute branch targets? None exist besides ours; the
    // verifier itself must still accept the shifted program.
    const analysis::MachineValidation v =
        analysis::validate_machine_translation(padded_spec, slots, mutant,
                                               compiled.layout,
                                               options.target);
    EXPECT_EQ(v.verdict, Verdict::kUnknown);
    EXPECT_FALSE(v.detail.empty());
}

// --- ProgramBuilder::finish() rejects bad label plumbing --------------------------------

TEST(ProgramBuilderFinish, RejectsJumpToForeignLabel)
{
    // A default-constructed Label was never created by this builder;
    // finish() used to silently emit a branch to instruction -1.
    ProgramBuilder pb;
    pb.jump(ProgramBuilder::Label{});
    pb.halt();
    EXPECT_THROW(pb.finish(), InternalError);
}

TEST(ProgramBuilderFinish, RejectsUnboundLabel)
{
    ProgramBuilder pb;
    auto label = pb.new_label();  // never bound
    pb.jump(label);
    pb.halt();
    EXPECT_THROW(pb.finish(), InternalError);
}

TEST(ProgramBuilderFinish, BoundLabelsStillResolve)
{
    ProgramBuilder pb;
    auto label = pb.new_label();
    pb.jump(label);
    pb.bind(label);
    pb.halt();
    const Program p = pb.finish();
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(p.code[0].imm, 1);
}

// --- Fuzzed differential: schedule preserves simulation byte-for-byte --------------------

TEST(VerifyMachine, FuzzedScheduleDifferential)
{
    // Random straight-line programs over floats, vectors, and absolute
    // memory: the list scheduler's output must simulate byte-identically
    // to the original, and the independent preservation checker must
    // agree with the claimed permutation every time.
    const TargetSpec target = width4();
    const int width = target.vector_width;
    constexpr int kWords = 64;
    constexpr int kPrograms = 40;
    Rng rng(0xD105'C0DE'0000'0001ULL);

    for (int trial = 0; trial < kPrograms; ++trial) {
        ProgramBuilder pb;
        std::vector<int> fregs, vregs;
        for (int i = 0; i < 4; ++i) {
            fregs.push_back(pb.fresh_float());
            vregs.push_back(pb.fresh_vec());
        }
        for (const int f : fregs)
            pb.fmov_i(f, rng.uniform_float(-2.0f, 2.0f));
        for (const int v : vregs)
            pb.vload(v, -1,
                     static_cast<int>(rng.uniform_int(0, kWords - width)));

        const int ops = static_cast<int>(rng.uniform_int(8, 24));
        for (int i = 0; i < ops; ++i) {
            const int pick = static_cast<int>(rng.uniform_int(0, 9));
            const int fa = fregs[rng.uniform_int(0, 3)];
            const int fb = fregs[rng.uniform_int(0, 3)];
            const int fd = fregs[rng.uniform_int(0, 3)];
            const int va = vregs[rng.uniform_int(0, 3)];
            const int vb = vregs[rng.uniform_int(0, 3)];
            const int vd = vregs[rng.uniform_int(0, 3)];
            switch (pick) {
                case 0:
                    pb.fbinop(Opcode::kFAdd, fd, fa, fb);
                    break;
                case 1:
                    pb.fbinop(Opcode::kFMul, fd, fa, fb);
                    break;
                case 2:
                    pb.fmac(fd, fa, fb);
                    break;
                case 3:
                    pb.vbinop(Opcode::kVAdd, vd, va, vb);
                    break;
                case 4:
                    pb.vmac(vd, va, vb);
                    break;
                case 5: {
                    std::vector<int> lanes;
                    for (int l = 0; l < width; ++l)
                        lanes.push_back(
                            static_cast<int>(rng.uniform_int(0, width - 1)));
                    pb.shuf(vd, va, lanes);
                    break;
                }
                case 6:
                    pb.vsplat_r(vd, fa);
                    break;
                case 7:
                    pb.vextract(
                        fd, va,
                        static_cast<int>(rng.uniform_int(0, width - 1)));
                    break;
                case 8:
                    pb.fstore(
                        -1,
                        static_cast<int>(rng.uniform_int(0, kWords - 1)),
                        fa);
                    break;
                default:
                    pb.vstore(
                        -1,
                        static_cast<int>(rng.uniform_int(0, kWords - width)),
                        va);
                    break;
            }
        }
        pb.halt();
        const Program original = pb.finish();

        const DiagEngine structural = verify(original, target);
        ASSERT_FALSE(structural.has_errors())
            << "trial " << trial << "\n"
            << structural.render_text() << disassemble(original, width);

        ScheduleStats stats;
        const Program scheduled =
            schedule_program(original, target, &stats);
        DiagEngine diags;
        ASSERT_TRUE(analysis::check_schedule_preservation(
            original, scheduled, stats, target, diags))
            << "trial " << trial << "\n"
            << diags.render_text();

        std::vector<float> image(kWords);
        for (auto& w : image) w = rng.uniform_float(-4.0f, 4.0f);
        Memory m1(kWords), m2(kWords);
        for (int w = 0; w < kWords; ++w) {
            m1.at(w) = image[w];
            m2.at(w) = image[w];
        }
        Simulator sim(target);
        sim.run(original, m1);
        sim.run(scheduled, m2);
        for (int w = 0; w < kWords; ++w) {
            // Bitwise: scheduling may not perturb results even by an ulp.
            std::uint32_t b1, b2;
            std::memcpy(&b1, &m1.at(w), sizeof(b1));
            std::memcpy(&b2, &m2.at(w), sizeof(b2));
            ASSERT_EQ(b1, b2)
                << "trial " << trial << " word " << w << ": "
                << m1.at(w) << " vs " << m2.at(w);
        }
    }
}

// --- VIR gate does not subsume the machine gate ------------------------------------------

TEST(VerifyMachine, VirVerifierMissesMachineLevelBugs)
{
    // Sanity for the DESIGN.md claim that the chain has a gap without
    // this layer: mutate the *machine* program of a compiled kernel and
    // confirm the VIR verifier (which only sees the vector IR) still
    // reports a clean bill of health.
    CompilerOptions options;
    options.target = width4();
    const scalar::Kernel kernel = kernels::make_matmul(2, 2, 2);
    const CompiledKernel compiled = compile_kernel(kernel, options);

    Program mutant = compiled.machine;
    std::swap(mutant.code[0], mutant.code[1]);

    const DiagEngine vir_diags =
        analysis::verify_compiled_kernel(kernel, compiled.vprogram);
    EXPECT_FALSE(vir_diags.has_errors()) << vir_diags.render_text();
}

}  // namespace
}  // namespace diospyros
