// Durability tests for the on-disk kernel cache (DESIGN.md §5e):
// envelope checksums, corruption classification and quarantine, the
// startup recovery scan (orphaned .tmp reclaim, disk-budget eviction),
// the cache.* fault-injection matrix with retry/backoff, and the
// self-healing end-to-end property — corrupt entries are never served
// and a warm run stays byte-identical to the cold one that filled the
// cache.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "compiler/driver.h"
#include "service/cache_key.h"
#include "service/compile_service.h"
#include "service/disk_cache.h"
#include "service/serialize.h"
#include "support/error.h"
#include "support/faults.h"
#include "support/hash.h"
#include "support/sexpr.h"

namespace diospyros {
namespace {

namespace fs = std::filesystem;
using scalar::Kernel;
using scalar::KernelBuilder;
using service::CacheKey;
using service::CachedEntry;
using service::CacheIoError;
using service::CacheOutcome;
using service::CompileService;
using service::DiskCache;
using service::IoPolicy;
using service::LoadResult;
using service::LoadStatus;
using service::RecoveryStats;

Kernel
vector_add_kernel(std::int64_t n)
{
    KernelBuilder kb("vadd" + std::to_string(n));
    const scalar::IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for("i", scalar::IntExpr::constant(0), size,
                             {scalar::st_store(
                                 "C", i,
                                 KernelBuilder::load("A", i) +
                                     KernelBuilder::load("B", i))}));
    return kb.build();
}

CompilerOptions
test_options()
{
    CompilerOptions options;
    options.limits = RunnerLimits{.node_limit = 200'000,
                                  .iter_limit = 10,
                                  .time_limit_seconds = 20.0};
    return options;
}

/** A fresh directory under the system temp dir, removed on destruction. */
struct TempDir {
    fs::path path;

    explicit TempDir(const std::string& tag)
        : path(fs::temp_directory_path() /
               ("dios_durability_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

std::string
slurp(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spit(const fs::path& path, const std::string& text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** Compiles `kernel` once and returns its persistable cache entry. */
CachedEntry
compiled_entry(const Kernel& kernel, const CompilerOptions& options)
{
    const CompileResult result = compile_kernel_resilient(kernel, options);
    EXPECT_TRUE(result.ok);
    return service::make_entry(service::compute_cache_key(kernel, options),
                               options, *result.compiled);
}

/** True when the directory holds any in-progress temp file. */
bool
has_tmp_orphans(const fs::path& dir)
{
    // Recursive: entries (and their torn .tmp files) live in per-key
    // shard subdirectories.
    for (const fs::directory_entry& de :
         fs::recursive_directory_iterator(dir)) {
        if (de.path().filename().string().find(".tmp.") !=
            std::string::npos) {
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Envelope format
// ---------------------------------------------------------------------------

TEST(Envelope, ChecksumCoversCanonicalPayload)
{
    const Kernel kernel = vector_add_kernel(4);
    const CompilerOptions options = test_options();
    const CachedEntry entry = compiled_entry(kernel, options);

    const Sexpr env = service::envelope_to_sexpr(entry);
    const service::EnvelopeFields fields = service::envelope_fields(env);
    ASSERT_TRUE(fields.well_formed) << fields.error;
    EXPECT_EQ(fields.format_version, service::kCacheFormatVersion);
    EXPECT_EQ(fields.rule_set_version, service::kRuleSetVersion);
    EXPECT_EQ(fields.checksum, stable_hash_string(fields.payload_text));

    // Pretty-printing (what store() writes) only changes whitespace, so
    // the canonical payload text — and with it the checksum — survives a
    // parse round trip of the pretty form.
    const Sexpr reparsed = parse_sexpr(env.to_pretty_string());
    const service::EnvelopeFields again = service::envelope_fields(reparsed);
    ASSERT_TRUE(again.well_formed) << again.error;
    EXPECT_EQ(again.payload_text, fields.payload_text);
    EXPECT_EQ(again.checksum, fields.checksum);
}

TEST(Envelope, MalformedEnvelopesAreReported)
{
    const service::EnvelopeFields atom =
        service::envelope_fields(Sexpr::atom("x"));
    EXPECT_FALSE(atom.well_formed);
    EXPECT_FALSE(atom.error.empty());

    const service::EnvelopeFields wrong_head = service::envelope_fields(
        parse_sexpr("(not-an-envelope (format-version 2))"));
    EXPECT_FALSE(wrong_head.well_formed);
}

// ---------------------------------------------------------------------------
// Corruption classification + quarantine + self-healing recompile
// ---------------------------------------------------------------------------

struct Corruption {
    const char* name;
    /** Mutates the on-disk text of a valid entry. */
    std::string (*mutate)(const std::string&);
    /** Whether this kind must be flagged as a checksum mismatch. */
    bool expect_checksum_mismatch;
};

std::string
truncate_half(const std::string& text)
{
    return text.substr(0, text.size() / 2);
}

std::string
flip_payload_digit(const std::string& text)
{
    // Flip one content-bearing character inside the payload without
    // breaking parseability: the checksum must catch it.
    std::string out = text;
    const std::size_t payload = out.find("(payload");
    for (std::size_t i = payload; i < out.size(); ++i) {
        if (out[i] >= '0' && out[i] <= '9') {
            out[i] = out[i] == '0' ? '1' : '0';
            return out;
        }
    }
    ADD_FAILURE() << "no digit found in payload";
    return out;
}

std::string
bump_format_version(const std::string& text)
{
    std::string out = text;
    const std::string tag = "(format-version";
    const std::size_t at = out.find(tag);
    EXPECT_NE(at, std::string::npos);
    const std::size_t end = out.find(')', at);
    out.replace(at, end - at, tag + " 9999");
    return out;
}

std::string
zero_out(const std::string& text)
{
    return std::string(text.size(), ' ');
}

class CorruptionRecovery : public ::testing::TestWithParam<Corruption> {};

TEST_P(CorruptionRecovery, QuarantinesAndRecompiles)
{
    const Corruption& kind = GetParam();
    TempDir dir(std::string("corrupt_") + kind.name);
    const Kernel kernel = vector_add_kernel(4);
    const CompilerOptions options = test_options();
    const CacheKey key = service::compute_cache_key(kernel, options);

    // Seed a valid entry, then corrupt it on disk.
    DiskCache disk(dir.str());
    disk.store(compiled_entry(kernel, options));
    ASSERT_EQ(disk.load(key).status, LoadStatus::kHit);
    const std::string good = slurp(disk.path_for(key));
    spit(disk.path_for(key), kind.mutate(good));

    // load() classifies it as corruption, never serves it.
    const LoadResult r = disk.load(key);
    EXPECT_EQ(r.status, LoadStatus::kCorrupt);
    EXPECT_FALSE(r.entry.has_value());
    EXPECT_FALSE(r.detail.empty());
    EXPECT_EQ(r.checksum_mismatch, kind.expect_checksum_mismatch);

    // A service starting over this directory quarantines the entry in
    // its recovery scan, surfaces the counts, recompiles on demand, and
    // re-stores a fresh entry under the same key.
    std::string served_source;
    {
        CompileService::Options sopts;
        sopts.jobs = 1;
        sopts.cache_dir = dir.str();
        CompileService svc(sopts);

        const service::ServiceMetrics at_start = svc.metrics();
        EXPECT_EQ(at_start.quarantined, 1u);
        EXPECT_EQ(at_start.checksum_failures,
                  kind.expect_checksum_mismatch ? 1u : 0u);
        EXPECT_TRUE(fs::exists(disk.quarantine_path_for(key)));
        EXPECT_FALSE(fs::exists(disk.path_for(key)));

        service::Ticket t = svc.submit(kernel, options);
        const CompileResult& result = t.get();
        ASSERT_TRUE(result.ok);
        EXPECT_EQ(t.outcome(), CacheOutcome::kMiss);
        served_source = result.compiled->c_source;
        svc.wait_idle();
        EXPECT_GE(svc.metrics().disk_writes, 1u);
    }

    // Self-healed: the key serves a verified hit again, identical to the
    // recompiled artifact, and the quarantined copy was kept as evidence.
    const LoadResult healed = disk.load(key);
    ASSERT_EQ(healed.status, LoadStatus::kHit);
    EXPECT_EQ(healed.entry->c_source, served_source);
    EXPECT_TRUE(fs::exists(disk.quarantine_path_for(key)));
    EXPECT_FALSE(has_tmp_orphans(dir.path));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CorruptionRecovery,
    ::testing::Values(
        Corruption{"truncate", &truncate_half, false},
        Corruption{"bitflip", &flip_payload_digit, true},
        Corruption{"version_bump", &bump_format_version, false},
        Corruption{"zero_out", &zero_out, false}),
    [](const ::testing::TestParamInfo<Corruption>& info) {
        return info.param.name;
    });

TEST(CorruptionRecoveryExtra, OlderFormatVersionIsCleanMiss)
{
    TempDir dir("stale_format");
    DiskCache disk(dir.str());
    const CompilerOptions options = test_options();
    const Kernel kernel = vector_add_kernel(4);
    const CacheKey key = service::compute_cache_key(kernel, options);
    disk.store(compiled_entry(kernel, options));

    std::string text = slurp(disk.path_for(key));
    const std::string tag = "(format-version";
    const std::size_t at = text.find(tag);
    ASSERT_NE(at, std::string::npos);
    const std::size_t end = text.find(')', at);
    text.replace(at, end - at,
                 tag + " " +
                     std::to_string(service::kCacheFormatVersion - 1));
    spit(disk.path_for(key), text);

    // An entry written by an older build is a legitimate miss: never
    // served (its payload layout may differ) but never quarantined as
    // corruption either.
    const LoadResult r = disk.load(key);
    EXPECT_EQ(r.status, LoadStatus::kMiss);
    EXPECT_FALSE(r.entry.has_value());
    EXPECT_NE(r.detail.find("stale format-version"), std::string::npos);
}

TEST(CorruptionRecoveryExtra, MisfiledEntryIsCorrupt)
{
    TempDir dir("misfiled");
    DiskCache disk(dir.str());
    const CompilerOptions options = test_options();
    const Kernel a = vector_add_kernel(4);
    disk.store(compiled_entry(a, options));

    // Copy A's (internally consistent, checksum-valid) entry to the path
    // of a different key: body/file-name disagreement must not be served.
    const CacheKey key_a = service::compute_cache_key(a, options);
    const CacheKey key_b =
        service::compute_cache_key(vector_add_kernel(8), options);
    fs::create_directories(disk.path_for(key_b).parent_path());
    fs::copy_file(disk.path_for(key_a), disk.path_for(key_b));

    const LoadResult r = disk.load(key_b);
    EXPECT_EQ(r.status, LoadStatus::kCorrupt);
    EXPECT_NE(r.detail.find("misfiled"), std::string::npos) << r.detail;
}

// ---------------------------------------------------------------------------
// Fault matrix: every cache.* site, with and without retry budget
// ---------------------------------------------------------------------------

TEST(FaultMatrix, StoreSitesRetryThenSucceed)
{
    // Fault-armed *submits* bypass the cache by design, so the matrix
    // drives DiskCache directly under a thread-local fault scope.
    TempDir dir("store_retry");
    DiskCache disk(dir.str());
    const CompilerOptions options = test_options();
    const CachedEntry entry =
        compiled_entry(vector_add_kernel(4), options);

    for (const char* site :
         {"cache.store.write", "cache.store.fsync", "cache.store.rename"}) {
        SCOPED_TRACE(site);
        fs::remove(disk.path_for(entry.key));

        // One transient failure + retry budget: the store succeeds and
        // reports exactly one retried attempt, leaving no torn state.
        {
            faults::ScopedFaults scope({faults::parse_spec(site)});
            IoPolicy policy;
            policy.retries = 2;
            EXPECT_EQ(disk.store(entry, policy), 1);
        }
        EXPECT_EQ(disk.load(entry.key).status, LoadStatus::kHit);
        EXPECT_FALSE(has_tmp_orphans(dir.path));
    }
}

TEST(FaultMatrix, StoreSitesFailFastWithoutBudget)
{
    TempDir dir("store_fail");
    DiskCache disk(dir.str());
    const CompilerOptions options = test_options();
    const CachedEntry entry =
        compiled_entry(vector_add_kernel(4), options);

    for (const char* site :
         {"cache.store.write", "cache.store.fsync", "cache.store.rename"}) {
        SCOPED_TRACE(site);
        faults::ScopedFaults scope(
            {faults::parse_spec(std::string(site) + ":1:*")});
        IoPolicy policy;
        policy.retries = 0;
        EXPECT_THROW(disk.store(entry, policy), faults::InjectedFault);
        EXPECT_FALSE(has_tmp_orphans(dir.path));
    }
    // Nothing was ever published.
    EXPECT_EQ(disk.load(entry.key).status, LoadStatus::kMiss);
}

TEST(FaultMatrix, LoadSitesPropagateAndNeverRetry)
{
    TempDir dir("load_faults");
    DiskCache disk(dir.str());
    const CompilerOptions options = test_options();
    const CachedEntry entry =
        compiled_entry(vector_add_kernel(4), options);
    disk.store(entry);

    // A read-side injected fault is an I/O problem, not corruption: it
    // must reach the caller (who counts load_errors and recompiles)
    // rather than trigger a quarantine of a healthy entry.
    for (const char* site : {"cache.load.read", "cache.load.checksum"}) {
        SCOPED_TRACE(site);
        faults::ScopedFaults scope({faults::parse_spec(site)});
        EXPECT_THROW(disk.load(entry.key), faults::InjectedFault);
    }
    // The entry is untouched afterwards.
    EXPECT_EQ(disk.load(entry.key).status, LoadStatus::kHit);
    EXPECT_FALSE(fs::exists(disk.quarantine_path_for(entry.key)));
}

TEST(FaultMatrix, ScanRetriesTransientFaults)
{
    TempDir dir("scan_faults");
    DiskCache disk(dir.str());
    const CompilerOptions options = test_options();
    disk.store(compiled_entry(vector_add_kernel(4), options));

    // With budget: the per-file fault is retried and the scan completes
    // with the entry intact.
    {
        faults::ScopedFaults scope({faults::parse_spec("cache.scan")});
        IoPolicy policy;
        policy.retries = 2;
        const RecoveryStats stats = disk.scan_and_recover(policy);
        EXPECT_GE(stats.io_retries, 1u);
        EXPECT_EQ(stats.quarantined, 0u);
    }

    // Without budget: the file is skipped, but the scan itself must
    // never be fatal — and a skipped healthy entry is still servable.
    {
        faults::ScopedFaults scope({faults::parse_spec("cache.scan:1:*")});
        IoPolicy policy;
        policy.retries = 0;
        EXPECT_NO_THROW(disk.scan_and_recover(policy));
    }
    EXPECT_EQ(
        disk.load(service::compute_cache_key(vector_add_kernel(4), options))
            .status,
        LoadStatus::kHit);
}

TEST(FaultMatrix, AllCacheSitesAreInTheCatalog)
{
    const std::vector<std::string>& sites = faults::known_sites();
    for (const char* site :
         {"cache.load.read", "cache.load.checksum", "cache.store.write",
          "cache.store.fsync", "cache.store.rename", "cache.scan"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
            << site;
    }
}

TEST(FaultMatrix, RenameOntoDirectoryIsInternalError)
{
    // A store that cannot publish is the infrastructure's problem, never
    // the caller's: it must surface as InternalError, not UserError.
    TempDir dir("rename_fail");
    DiskCache disk(dir.str());
    const CompilerOptions options = test_options();
    const CachedEntry entry =
        compiled_entry(vector_add_kernel(4), options);
    fs::create_directories(disk.path_for(entry.key));

    IoPolicy policy;
    policy.retries = 0;
    EXPECT_THROW(disk.store(entry, policy), InternalError);
    EXPECT_FALSE(has_tmp_orphans(dir.path));
    fs::remove_all(disk.path_for(entry.key));
}

// ---------------------------------------------------------------------------
// Recovery scan: orphaned .tmp reclaim and the disk budget
// ---------------------------------------------------------------------------

TEST(RecoveryScan, ReclaimsOrphanedTmpFromDeadWriter)
{
    TempDir dir("orphans");
    fs::create_directories(dir.path);
    // An orphan from a provably dead writer (pids are well below 10^9).
    spit(dir.path / "deadbeef.tmp.999999999.0", "torn half-write");
    // A fresh tmp from *this* (live) process must be left alone: its
    // rename may still be in flight.
    const fs::path live = dir.path /
        ("cafe.tmp." + std::to_string(::getpid()) + ".0");
    spit(live, "in-flight write");

    DiskCache disk(dir.str());
    EXPECT_EQ(disk.startup_stats().recovered_tmp, 1u);
    EXPECT_FALSE(fs::exists(dir.path / "deadbeef.tmp.999999999.0"));
    EXPECT_TRUE(fs::exists(live));
}

TEST(RecoveryScan, EvictsOldestPastDiskBudget)
{
    TempDir dir("budget");
    const CompilerOptions options = test_options();
    std::vector<CacheKey> keys;
    std::uintmax_t largest = 0;
    {
        DiskCache disk(dir.str());
        for (const std::int64_t n : {4, 8, 12}) {
            const CachedEntry entry =
                compiled_entry(vector_add_kernel(n), options);
            disk.store(entry);
            keys.push_back(entry.key);
            largest =
                std::max(largest, fs::file_size(disk.path_for(entry.key)));
        }
        // Stagger mtimes so the LRU order is unambiguous: keys[0] oldest.
        const auto now = fs::file_time_type::clock::now();
        using std::chrono::hours;
        fs::last_write_time(disk.path_for(keys[0]), now - hours(3));
        fs::last_write_time(disk.path_for(keys[1]), now - hours(2));
        fs::last_write_time(disk.path_for(keys[2]), now - hours(1));
    }

    // A budget with room for roughly one entry: the two oldest go.
    DiskCache disk(dir.str(), largest);
    EXPECT_EQ(disk.startup_stats().disk_evicted, 2u);
    EXPECT_EQ(disk.load(keys[0]).status, LoadStatus::kMiss);
    EXPECT_EQ(disk.load(keys[1]).status, LoadStatus::kMiss);
    EXPECT_EQ(disk.load(keys[2]).status, LoadStatus::kHit);

    // Eviction is deletion, not quarantine: evicted entries were valid.
    EXPECT_FALSE(fs::exists(disk.quarantine_path_for(keys[0])));
}

TEST(RecoveryScan, MigratesLegacyFlatEntriesIntoShards)
{
    TempDir dir("migrate");
    const CompilerOptions options = test_options();
    CacheKey key;
    {
        DiskCache disk(dir.str());
        const CachedEntry entry =
            compiled_entry(vector_add_kernel(4), options);
        disk.store(entry);
        key = entry.key;
        // Demote the entry to the pre-shard flat layout.
        fs::rename(disk.path_for(key), dir.path / (key.hex() + ".sexpr"));
    }

    DiskCache disk(dir.str());
    EXPECT_EQ(disk.startup_stats().migrated, 1u);
    EXPECT_EQ(disk.startup_stats().shards_scanned, 1u);
    EXPECT_FALSE(fs::exists(dir.path / (key.hex() + ".sexpr")));
    EXPECT_TRUE(fs::exists(disk.path_for(key)));
    EXPECT_EQ(disk.path_for(key).parent_path().filename().string(),
              service::shard_name_for(key));
    EXPECT_EQ(disk.load(key).status, LoadStatus::kHit);
}

TEST(RecoveryScan, UnlimitedBudgetEvictsNothing)
{
    TempDir dir("no_budget");
    const CompilerOptions options = test_options();
    {
        DiskCache disk(dir.str());
        disk.store(compiled_entry(vector_add_kernel(4), options));
    }
    DiskCache disk(dir.str(), 0);
    EXPECT_EQ(disk.startup_stats().disk_evicted, 0u);
}

// ---------------------------------------------------------------------------
// Service-level: self-healing end to end, metrics surface
// ---------------------------------------------------------------------------

TEST(SelfHealing, WarmRunByteIdenticalAfterMassCorruption)
{
    const CompilerOptions options = test_options();
    std::vector<Kernel> kernels;
    for (const std::int64_t n : {4, 8, 12, 16}) {
        kernels.push_back(vector_add_kernel(n));
    }

    // Cold reference: no cache at all.
    std::vector<std::string> cold_sources;
    for (const Kernel& k : kernels) {
        const CompileResult r = compile_kernel_resilient(k, options);
        ASSERT_TRUE(r.ok);
        cold_sources.push_back(r.compiled->c_source);
    }

    TempDir dir("self_heal");
    CompileService::Options sopts;
    sopts.jobs = 2;
    sopts.cache_dir = dir.str();
    {
        CompileService svc(sopts);
        for (const Kernel& k : kernels) {
            ASSERT_TRUE(svc.submit(k, options).get().ok);
        }
        svc.wait_idle();
    }

    // Bit-flip 25% of the on-disk entries (1 of 4).
    DiskCache probe(dir.str());
    const CacheKey victim =
        service::compute_cache_key(kernels[1], options);
    spit(probe.path_for(victim),
         flip_payload_digit(slurp(probe.path_for(victim))));

    // Warm run over the damaged store: every artifact byte-identical to
    // the cold reference, the victim quarantined and recompiled, zero
    // corrupt bytes served, no torn temp files left behind.
    {
        CompileService svc(sopts);
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            service::Ticket t = svc.submit(kernels[i], options);
            const CompileResult& r = t.get();
            ASSERT_TRUE(r.ok);
            EXPECT_EQ(r.compiled->c_source, cold_sources[i]);
        }
        svc.wait_idle();
        const service::ServiceMetrics m = svc.metrics();
        EXPECT_EQ(m.quarantined, 1u);
        EXPECT_EQ(m.checksum_failures, 1u);
        EXPECT_EQ(m.disk_hits, kernels.size() - 1);
        EXPECT_EQ(m.misses, 1u);
    }
    EXPECT_TRUE(fs::exists(probe.quarantine_path_for(victim)));
    EXPECT_FALSE(has_tmp_orphans(dir.path));

    // The healed store now serves everything.
    for (const Kernel& k : kernels) {
        EXPECT_EQ(
            probe.load(service::compute_cache_key(k, options)).status,
            LoadStatus::kHit);
    }
}

TEST(ServiceMetrics, DurabilityCountersInJson)
{
    TempDir dir("metrics");
    CompileService::Options sopts;
    sopts.cache_dir = dir.str();
    sopts.disk_budget_bytes = 1u << 30;
    CompileService svc(sopts);
    const std::string json = svc.metrics().to_json();
    for (const char* field :
         {"\"quarantined\"", "\"recovered_tmp\"", "\"checksum_failures\"",
          "\"disk_evicted\"", "\"io_retries\"", "\"store_failures\"",
          "\"load_errors\""}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
}

}  // namespace
}  // namespace diospyros
