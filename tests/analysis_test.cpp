// Tests for the static-analysis suite: the structured diagnostics
// engine, the VIR verifier (hand-built malformed programs, one per
// diagnostic code), the e-graph auditor on real saturated graphs, and
// the rewrite-rule soundness linter (every registered rule proves sound;
// an intentionally broken rule is caught).

#include <gtest/gtest.h>

#include "analysis/audit_egraph.h"
#include "analysis/lint_rules.h"
#include "analysis/verify_vir.h"
#include "compiler/driver.h"
#include "egraph/runner.h"
#include "rules/rules.h"
#include "vir/lower_term.h"
#include "vir/lvn.h"

namespace diospyros::analysis {
namespace {

using vir::VInstr;
using vir::VOp;
using vir::VProgram;

// ---------------------------------------------------------------------
// Diagnostics engine

TEST(Diagnostics, CountsAndRendersText)
{
    DiagEngine diags;
    EXPECT_FALSE(diags.has_errors());
    diags.error("vir-verify", "V004", "lane 99 out of bounds", 3);
    diags.warning("rule-lint", "R302", "rule not exercised");
    diags.note("egraph-audit", "E000", "context", -1, 17);
    EXPECT_EQ(diags.error_count(), 1u);
    EXPECT_EQ(diags.warning_count(), 1u);
    EXPECT_TRUE(diags.has_errors());
    EXPECT_TRUE(diags.has_code("V004"));
    EXPECT_FALSE(diags.has_code("V005"));

    const std::string text = diags.render_text();
    EXPECT_NE(text.find("error vir-verify [V004] instr 3"),
              std::string::npos);
    EXPECT_NE(text.find("lane 99 out of bounds"), std::string::npos);
    EXPECT_NE(text.find("warning rule-lint [R302]"), std::string::npos);
    EXPECT_NE(text.find("eclass 17"), std::string::npos);
}

TEST(Diagnostics, RendersJsonWithEveryField)
{
    DiagEngine diags;
    diags.error("vir-verify", "V007", "store past \"extent\"", 5);
    const std::string json = diags.render_json();
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"pass\":\"vir-verify\""), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"V007\""), std::string::npos);
    EXPECT_NE(json.find("\"instr_index\":5"), std::string::npos);
    EXPECT_NE(json.find("\"eclass_id\":-1"), std::string::npos);
    // Quotes in the message must be escaped.
    EXPECT_NE(json.find("store past \\\"extent\\\""), std::string::npos);
}

// ---------------------------------------------------------------------
// VIR verifier: hand-built malformed programs

VProgram
empty_program(int width = 4)
{
    VProgram p;
    p.vector_width = width;
    return p;
}

VInstr
sconst(int dst, double v)
{
    VInstr i;
    i.op = VOp::kSConst;
    i.dst = dst;
    i.values = {v};
    return i;
}

VInstr
vconst(int dst, int width)
{
    VInstr i;
    i.op = VOp::kVConst;
    i.dst = dst;
    i.values.assign(static_cast<std::size_t>(width), 1.0);
    return i;
}

VInstr
sstore(int src, const char* array, std::int64_t offset)
{
    VInstr i;
    i.op = VOp::kSStore;
    i.a = src;
    i.array = Symbol(array);
    i.offset = offset;
    return i;
}

VInstr
vstore(int src, const char* array, std::int64_t offset)
{
    VInstr i;
    i.op = VOp::kVStore;
    i.a = src;
    i.array = Symbol(array);
    i.offset = offset;
    return i;
}

/** Expects exactly the given code among the verifier's errors. */
void
expect_rejected(const VProgram& p, const char* code,
                const ArrayExtents& extents = {})
{
    DiagEngine diags;
    EXPECT_FALSE(verify_vprogram(p, diags, extents));
    EXPECT_TRUE(diags.has_code(code))
        << "expected " << code << ", got:\n"
        << diags.render_text() << p.to_string();
}

TEST(VerifyVir, UseBeforeDefinition)
{
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    const int s1 = p.fresh_scalar();
    const int s2 = p.fresh_scalar();
    VInstr add;
    add.op = VOp::kSBinary;
    add.alu = Op::kAdd;
    add.dst = s2;
    add.a = s0;
    add.b = s1;  // s0/s1 declared but never defined
    p.instrs.push_back(add);
    expect_rejected(p, "V001");
}

TEST(VerifyVir, OperandIdOutOfRange)
{
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    p.instrs.push_back(sconst(s0, 1.0));
    p.instrs.push_back(sstore(/*src=*/7, "out", 0));  // id 7: no such value
    expect_rejected(p, "V002");
}

TEST(VerifyVir, SsaRedefinition)
{
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    p.instrs.push_back(sconst(s0, 1.0));
    p.instrs.push_back(sconst(s0, 2.0));  // second write to s0
    expect_rejected(p, "V003");
}

TEST(VerifyVir, ShuffleLaneOutOfBounds)
{
    VProgram p = empty_program();
    const int v0 = p.fresh_vector();
    const int v1 = p.fresh_vector();
    p.instrs.push_back(vconst(v0, 4));
    VInstr shuf;
    shuf.op = VOp::kShuffle;
    shuf.dst = v1;
    shuf.a = v0;
    shuf.lanes = {99, 0, 0, 0};  // shuffle indexes [0, width)
    p.instrs.push_back(shuf);
    expect_rejected(p, "V004");
}

TEST(VerifyVir, SelectIndexesTheConcatenation)
{
    // Select lanes address concat(a, b): [0, 2*width) is legal...
    VProgram p = empty_program();
    const int v0 = p.fresh_vector();
    const int v1 = p.fresh_vector();
    const int v2 = p.fresh_vector();
    p.instrs.push_back(vconst(v0, 4));
    p.instrs.push_back(vconst(v1, 4));
    VInstr sel;
    sel.op = VOp::kSelect;
    sel.dst = v2;
    sel.a = v0;
    sel.b = v1;
    sel.lanes = {0, 7, 4, 3};
    p.instrs.push_back(sel);
    DiagEngine diags;
    EXPECT_TRUE(verify_vprogram(p, diags)) << diags.render_text();

    // ...but 8 is out even for select.
    p.instrs.back().lanes = {0, 8, 4, 3};
    expect_rejected(p, "V004");
}

TEST(VerifyVir, ExtractLaneImmediateOutOfRange)
{
    VProgram p = empty_program();
    const int v0 = p.fresh_vector();
    const int s0 = p.fresh_scalar();
    p.instrs.push_back(vconst(v0, 4));
    VInstr ext;
    ext.op = VOp::kSExtract;
    ext.dst = s0;
    ext.a = v0;
    ext.lane = 4;  // width is 4: lanes are [0, 4)
    p.instrs.push_back(ext);
    expect_rejected(p, "V005");
}

TEST(VerifyVir, NegativeMemoryOffset)
{
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    VInstr load;
    load.op = VOp::kSLoad;
    load.dst = s0;
    load.array = Symbol("a");
    load.offset = -1;
    p.instrs.push_back(load);
    expect_rejected(p, "V006");
}

TEST(VerifyVir, StorePastDeclaredExtent)
{
    const ArrayExtents extents{{"out", 4}};
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    p.instrs.push_back(sconst(s0, 1.0));
    p.instrs.push_back(sstore(s0, "out", 7));
    expect_rejected(p, "V007", extents);
}

TEST(VerifyVir, VectorStorePastDeclaredExtent)
{
    // A width-4 store at offset 4 needs extent >= 8.
    const ArrayExtents extents{{"out", 4}};
    VProgram p = empty_program();
    const int v0 = p.fresh_vector();
    p.instrs.push_back(vconst(v0, 4));
    p.instrs.push_back(vstore(v0, "out", 4));
    expect_rejected(p, "V007", extents);
}

TEST(VerifyVir, UndeclaredArray)
{
    const ArrayExtents extents{{"out", 4}};
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    p.instrs.push_back(sconst(s0, 1.0));
    p.instrs.push_back(sstore(s0, "mystery", 0));
    expect_rejected(p, "V007", extents);
}

TEST(VerifyVir, ScalarVectorKindMismatch)
{
    // Scalar id 0 is defined; vector id 0 exists but is not. A vector
    // store of id 0 is a kind confusion, not a plain use-before-def.
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    const int v0 = p.fresh_vector();
    (void)v0;
    p.instrs.push_back(sconst(s0, 1.0));
    p.instrs.push_back(vstore(0, "out", 0));
    expect_rejected(p, "V008");
}

TEST(VerifyVir, LvnMustPreserveStoreOrder)
{
    VProgram p = empty_program();
    const int s0 = p.fresh_scalar();
    const int s1 = p.fresh_scalar();
    p.instrs.push_back(sconst(s0, 1.0));
    p.instrs.push_back(sconst(s1, 2.0));
    p.instrs.push_back(sstore(s0, "out", 0));
    p.instrs.push_back(sstore(s1, "out", 1));
    const std::vector<StoreSig> before = store_signature(p);

    std::swap(p.instrs[2], p.instrs[3]);  // "LVN" reordered the stores
    DiagEngine diags;
    EXPECT_FALSE(check_store_order(before, p, diags));
    EXPECT_TRUE(diags.has_code("V009")) << diags.render_text();

    std::swap(p.instrs[2], p.instrs[3]);
    DiagEngine clean;
    EXPECT_TRUE(check_store_order(before, p, clean));
}

TEST(VerifyVir, MalformedPayloads)
{
    {
        VProgram p = empty_program();
        p.instrs.push_back(sconst(p.fresh_scalar(), 1.0));
        p.instrs.back().values = {1.0, 2.0};  // kSConst carries ONE value
        expect_rejected(p, "V010");
    }
    {
        VProgram p = empty_program();
        p.instrs.push_back(vconst(p.fresh_vector(), 3));  // width is 4
        expect_rejected(p, "V010");
    }
    {
        VProgram p = empty_program();
        const int s0 = p.fresh_scalar();
        p.instrs.push_back(sconst(s0, 1.0));
        VInstr st = sstore(s0, "out", 0);
        st.dst = s0;  // stores must have dst == -1
        p.instrs.push_back(st);
        expect_rejected(p, "V010");
    }
}

TEST(VerifyVir, UnalignedVectorAccess)
{
    VProgram p = empty_program();
    const int v0 = p.fresh_vector();
    VInstr load;
    load.op = VOp::kVLoadA;
    load.dst = v0;
    load.array = Symbol("a");
    load.offset = 2;  // aligned block loads require offset % width == 0
    p.instrs.push_back(load);
    expect_rejected(p, "V011");
}

TEST(VerifyVir, HeaderSanity)
{
    VProgram p = empty_program(/*width=*/0);
    expect_rejected(p, "V010");
}

// ---------------------------------------------------------------------
// VIR verifier: real lowered programs are clean

scalar::Kernel
gather_kernel()
{
    scalar::KernelBuilder kb("analysis-gather");
    kb.input("a", scalar::IntExpr::constant(8));
    kb.output("out", scalar::IntExpr::constant(4));
    kb.append(scalar::st_store("out", scalar::IntExpr::constant(0),
                               scalar::f_const(0)));
    return kb.build();
}

TEST(VerifyVir, LoweredProgramVerifiesBeforeAndAfterLvn)
{
    const scalar::Kernel kernel = gather_kernel();
    std::vector<vir::OutputSlot> slots{{"out", 4, 4}};
    VProgram p = vir::lower_term(
        Term::parse(
            "(List (Vec (Get a 6) (* (Get a 1) (Get a 2)) 3 (Get a 0)))"),
        4, slots);

    const ArrayExtents extents = padded_extents(kernel, 4);
    EXPECT_EQ(extents.at("a"), 8);
    EXPECT_EQ(extents.at("out"), 4);

    DiagEngine before;
    EXPECT_TRUE(verify_vprogram(p, before, extents))
        << before.render_text();

    const std::vector<StoreSig> stores = store_signature(p);
    vir::run_lvn(p);
    DiagEngine after;
    EXPECT_TRUE(verify_vprogram(p, after, extents)) << after.render_text();
    EXPECT_TRUE(check_store_order(stores, p, after))
        << after.render_text();
}

TEST(VerifyVir, CompiledKernelPassesTheGate)
{
    scalar::KernelBuilder kb("vadd8");
    const scalar::IntRef size = kb.param("n", 8);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const scalar::IntRef i = scalar::KernelBuilder::var("i");
    kb.append(scalar::st_for(
        "i", scalar::IntExpr::constant(0), size,
        {scalar::st_store("C", i,
                          scalar::KernelBuilder::load("A", i) +
                              scalar::KernelBuilder::load("B", i))}));
    const scalar::Kernel kernel = kb.build();

    CompilerOptions options;
    options.limits = RunnerLimits{.node_limit = 200'000,
                                  .iter_limit = 10,
                                  .time_limit_seconds = 20.0};
    options.verify_ir = true;  // exercise the in-pipeline gates too
    const CompiledKernel compiled = compile_kernel(kernel, options);

    const DiagEngine diags =
        verify_compiled_kernel(kernel, compiled.vprogram);
    EXPECT_FALSE(diags.has_errors()) << diags.render_text();

    // Corrupting the program must flip the gate: out-of-bounds shuffle.
    vir::VProgram bad = compiled.vprogram;
    VInstr shuf;
    shuf.op = VOp::kShuffle;
    shuf.dst = bad.fresh_vector();
    shuf.a = 0;
    shuf.lanes = {99, 0, 0, 0};
    bad.instrs.push_back(shuf);
    const DiagEngine rejected = verify_compiled_kernel(kernel, bad);
    EXPECT_TRUE(rejected.has_code("V004")) << rejected.render_text();
}

// ---------------------------------------------------------------------
// E-graph auditor

TEST(AuditEGraph, CleanAfterSaturationAndExtraction)
{
    EGraph graph;
    const ClassId root = graph.add_term(Term::parse(
        "(List (+ (Get a 0) (* (Get a 1) (Get a 2))) (- (Get a 3) 1) 0 "
        "0)"));
    graph.rebuild();

    RuleConfig config(4);
    Runner(RunnerLimits{.node_limit = 50'000,
                        .iter_limit = 6,
                        .time_limit_seconds = 10.0})
        .run(graph, build_rules(config));

    DiagEngine diags;
    EXPECT_TRUE(audit_egraph(graph, diags)) << diags.render_text();

    const TreeSizeCost cost;
    const Extractor extractor(graph, cost);
    EXPECT_TRUE(audit_extraction(graph, cost, diags, &extractor))
        << diags.render_text();
    EXPECT_EQ(diags.error_count(), 0u);
    EXPECT_GT(extractor.class_cost(graph.find(root)), 0.0);
}

TEST(AuditEGraph, FlagsDirtyGraph)
{
    EGraph graph;
    const ClassId a = graph.add_term(Term::parse("(+ (Get a 0) (Get a 1))"));
    const ClassId b = graph.add_term(Term::parse("(* (Get a 0) (Get a 1))"));
    graph.rebuild();
    graph.merge(a, b);  // pending congruence repair: the graph is dirty
    DiagEngine diags;
    EXPECT_FALSE(audit_egraph(graph, diags));
    EXPECT_TRUE(diags.has_code("E106")) << diags.render_text();
}

TEST(AuditEGraph, OpIndexInvariantHoldsAfterMerges)
{
    // The auditor's E107/E108 checks recompute the op-index from the
    // class table; a merged-then-rebuilt graph must pass both directions
    // (no class missing from its op's list, no stale entry surviving).
    EGraph graph;
    const ClassId a = graph.add_term(Term::parse("(+ (Get a 0) (Get a 1))"));
    const ClassId b = graph.add_term(Term::parse("(* (Get a 0) (Get a 1))"));
    graph.merge(a, b);
    graph.rebuild();
    DiagEngine diags;
    EXPECT_TRUE(audit_egraph(graph, diags)) << diags.render_text();
    EXPECT_FALSE(diags.has_code("E107"));
    EXPECT_FALSE(diags.has_code("E108"));
}

TEST(AuditExtraction, FlagsNonMonotonicCostModel)
{
    struct ZeroCost : CostModel {
        double
        node_cost(const EGraph&, const ENode&) const override
        {
            return 0.0;
        }
    };
    EGraph graph;
    graph.add_term(Term::parse("(+ (Get a 0) 1)"));
    graph.rebuild();
    const ZeroCost cost;
    DiagEngine diags;
    // No extractor: the Extractor itself refuses non-positive costs; the
    // audit must diagnose the model directly.
    EXPECT_FALSE(audit_extraction(graph, cost, diags));
    EXPECT_TRUE(diags.has_code("E201")) << diags.render_text();
}

// ---------------------------------------------------------------------
// Rule soundness linter

TEST(LintRules, EveryRegisteredRuleIsSound)
{
    RuleConfig config(4);
    config.full_ac = true;
    config.target_has_recip = true;
    const std::vector<RuleLintResult> results = lint_rules(config);
    EXPECT_GE(results.size(), 20u);
    for (const RuleLintResult& r : results) {
        EXPECT_NE(r.verdict, Verdict::kNotEquivalent)
            << r.rule << ": " << r.detail;
        EXPECT_TRUE(r.exercised) << r.rule << " was never exercised";
    }
    DiagEngine diags;
    EXPECT_TRUE(lint_to_diags(results, diags)) << diags.render_text();
    EXPECT_FALSE(diags.has_code("R301"));
}

TEST(LintRules, CatchesAnUnsoundRule)
{
    // Deliberately wrong "distributivity": a*(b+c) != a + b*c.
    const Rewrite bad = Rewrite::make("bad-distrib", "(* ?a (+ ?b ?c))",
                                      "(+ ?a (* ?b ?c))");
    const RuleLintResult r = lint_rule(bad, 4);
    EXPECT_EQ(r.verdict, Verdict::kNotEquivalent) << r.detail;

    DiagEngine diags;
    EXPECT_FALSE(lint_to_diags({r}, diags));
    EXPECT_TRUE(diags.has_code("R301")) << diags.render_text();
}

TEST(LintRules, UnboundRhsVariableIsRejectedAtConstruction)
{
    // The pattern layer refuses such a rule outright; the linter's own
    // binding check is the backstop for custom appliers.
    EXPECT_THROW(Rewrite::make("bad-unbound", "(+ ?a 0)", "?b"),
                 std::exception);
}

}  // namespace
}  // namespace diospyros::analysis
