// Unit and property tests for the simulated DSP: memory, ISA semantics,
// cycle accounting, control flow, and the disassembler.

#include <gtest/gtest.h>

#include <cmath>

#include "machine/program.h"
#include "machine/sim.h"
#include "support/error.h"
#include "support/rng.h"

namespace diospyros {
namespace {

class MachineTest : public ::testing::Test {
  protected:
    TargetSpec spec_ = TargetSpec::fusion_g3_like();
    Simulator sim_{TargetSpec::fusion_g3_like()};
};

TEST_F(MachineTest, MemorySegments)
{
    Memory mem;
    const int a = mem.alloc("a", {1.0f, 2.0f, 3.0f});
    const int b = mem.alloc("b", 4);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 3);
    EXPECT_EQ(mem.base("a"), 0);
    EXPECT_EQ(mem.read("a"), (std::vector<float>{1.0f, 2.0f, 3.0f}));
    mem.write("b", {9, 8, 7, 6});
    EXPECT_FLOAT_EQ(mem.at(4), 8.0f);
    EXPECT_THROW(mem.alloc("a", 1), UserError);
    EXPECT_THROW(mem.base("zzz"), UserError);
    EXPECT_THROW(mem.at(99), UserError);
}

TEST_F(MachineTest, ScalarArithmeticAndCycles)
{
    // out[0] = a[0] + a[1] * a[2]
    Memory mem;
    mem.alloc("a", {2.0f, 3.0f, 4.0f});
    mem.alloc("out", 1);

    ProgramBuilder pb;
    const int x = pb.fresh_float();
    const int y = pb.fresh_float();
    const int z = pb.fresh_float();
    pb.fload(x, -1, 0);
    pb.fload(y, -1, 1);
    pb.fload(z, -1, 2);
    pb.fmac(x, y, z);
    pb.fstore(-1, 3, x);
    pb.halt();
    const Program p = pb.finish();

    const RunResult r = sim_.run(p, mem);
    EXPECT_FLOAT_EQ(mem.read("out")[0], 14.0f);
    EXPECT_EQ(r.instructions, 6u);
    // Loads issue at 0/1/2; the mac waits for the last load (ready at 3)
    // and completes at 5; the store issues at 5 and completes at 6.
    EXPECT_EQ(r.cycles, 6u);
    EXPECT_EQ(r.stall_cycles, 1u);
    EXPECT_EQ(r.count(Opcode::kFMac), 1u);
}

TEST_F(MachineTest, VectorLaneSemantics)
{
    Memory mem;
    mem.alloc("a", {1, 2, 3, 4});
    mem.alloc("b", {10, 20, 30, 40});
    mem.alloc("out", 4);

    ProgramBuilder pb;
    const int va = pb.fresh_vec();
    const int vb = pb.fresh_vec();
    pb.vload(va, -1, 0);
    pb.vload(vb, -1, 4);
    pb.vmac(vb, va, va);  // b += a*a
    pb.vstore(-1, 8, vb);
    pb.halt();

    sim_.run(pb.finish(), mem);
    EXPECT_EQ(mem.read("out"), (std::vector<float>{11, 24, 39, 56}));
}

TEST_F(MachineTest, ShuffleAndSelect)
{
    Memory mem;
    mem.alloc("a", {0, 1, 2, 3});
    mem.alloc("b", {4, 5, 6, 7});
    mem.alloc("out", 8);

    ProgramBuilder pb;
    const int va = pb.fresh_vec();
    const int vb = pb.fresh_vec();
    const int vs = pb.fresh_vec();
    const int vt = pb.fresh_vec();
    pb.vload(va, -1, 0);
    pb.vload(vb, -1, 4);
    pb.shuf(vs, va, {3, 3, 0, 1});
    // The paper's Figure 2 example: indices {1, 2, 0, 5} over two inputs.
    pb.sel(vt, va, vb, {1, 2, 0, 5});
    pb.vstore(-1, 8, vs);
    pb.vstore(-1, 12, vt);
    pb.halt();

    sim_.run(pb.finish(), mem);
    const auto out = mem.read("out");
    EXPECT_EQ(std::vector<float>(out.begin(), out.begin() + 4),
              (std::vector<float>{3, 3, 0, 1}));
    EXPECT_EQ(std::vector<float>(out.begin() + 4, out.end()),
              (std::vector<float>{1, 2, 0, 5}));
}

TEST_F(MachineTest, InsertExtract)
{
    Memory mem;
    mem.alloc("a", {1, 2, 3, 4});
    mem.alloc("out", 2);

    ProgramBuilder pb;
    const int va = pb.fresh_vec();
    const int f = pb.fresh_float();
    pb.vload(va, -1, 0);
    pb.vextract(f, va, 2);
    pb.fstore(-1, 4, f);
    pb.fmov_i(f, 99.0f);
    pb.vinsert(va, 0, f);
    pb.vextract(f, va, 0);
    pb.fstore(-1, 5, f);
    pb.halt();

    sim_.run(pb.finish(), mem);
    EXPECT_EQ(mem.read("out"), (std::vector<float>{3, 99}));
}

TEST_F(MachineTest, LoopWithBranches)
{
    // Sum 10 elements with a counted loop; checks branch semantics and
    // the taken-branch penalty accounting.
    Memory mem;
    std::vector<float> data(10);
    for (int i = 0; i < 10; ++i) {
        data[static_cast<std::size_t>(i)] = static_cast<float>(i + 1);
    }
    mem.alloc("a", data);
    mem.alloc("out", 1);

    ProgramBuilder pb;
    const int idx = pb.fresh_int();
    const int limit = pb.fresh_int();
    const int acc = pb.fresh_float();
    const int tmp = pb.fresh_float();
    pb.fmov_i(acc, 0.0f);
    pb.mov_i(idx, 0);
    pb.mov_i(limit, 10);
    auto loop = pb.new_label();
    pb.bind(loop);
    pb.fload(tmp, idx, 0);
    pb.fbinop(Opcode::kFAdd, acc, acc, tmp);
    pb.add_i(idx, idx, 1);
    pb.branch_lt(idx, limit, loop);
    pb.fstore(-1, 10, acc);
    pb.halt();

    const RunResult r = sim_.run(pb.finish(), mem);
    EXPECT_FLOAT_EQ(mem.read("out")[0], 55.0f);
    // 9 taken branches, 1 fall-through.
    EXPECT_EQ(r.count(Opcode::kBranchLt), 10u);
}

TEST_F(MachineTest, IndexArithmetic)
{
    // addr = base + i*3 + 2 addressing via integer ops.
    Memory mem;
    mem.alloc("a", {0, 1, 2, 3, 4, 5, 6, 7, 8});
    mem.alloc("out", 1);

    ProgramBuilder pb;
    const int i = pb.fresh_int();
    const int addr = pb.fresh_int();
    const int f = pb.fresh_float();
    pb.mov_i(i, 2);
    pb.imul_i(addr, i, 3);
    pb.add_i(addr, addr, 2);
    pb.fload(f, addr, 0);
    pb.fstore(-1, 9, f);
    pb.halt();

    sim_.run(pb.finish(), mem);
    EXPECT_FLOAT_EQ(mem.read("out")[0], 8.0f);
}

TEST_F(MachineTest, RunawayLoopIsCaught)
{
    ProgramBuilder pb;
    auto top = pb.new_label();
    pb.bind(top);
    pb.jump(top);
    Memory mem;
    EXPECT_THROW(sim_.run(pb.finish(), mem, 1000), UserError);
}

TEST_F(MachineTest, OutOfBoundsAccessIsCaught)
{
    ProgramBuilder pb;
    const int f = pb.fresh_float();
    pb.fload(f, -1, 1234);
    pb.halt();
    Memory mem(8);
    EXPECT_THROW(sim_.run(pb.finish(), mem), UserError);
}

TEST_F(MachineTest, UnboundLabelIsCaught)
{
    ProgramBuilder pb;
    auto l = pb.new_label();
    pb.jump(l);
    EXPECT_THROW(pb.finish(), InternalError);
}

TEST_F(MachineTest, DivSqrtLatenciesCharged)
{
    ProgramBuilder pb;
    const int f = pb.fresh_float();
    pb.fmov_i(f, 4.0f);
    pb.funop(Opcode::kFSqrt, f, f);
    pb.fbinop(Opcode::kFDiv, f, f, f);
    pb.halt();
    Memory mem;
    const RunResult r = sim_.run(pb.finish(), mem);
    EXPECT_EQ(r.cycles, static_cast<std::uint64_t>(
                            spec_.cost(Opcode::kFMovI) +
                            spec_.cost(Opcode::kFSqrt) +
                            spec_.cost(Opcode::kFDiv)));
}

TEST_F(MachineTest, SplatFromRegister)
{
    Memory mem;
    mem.alloc("a", std::vector<float>{7.5f});
    mem.alloc("out", 4);
    ProgramBuilder pb;
    const int f = pb.fresh_float();
    const int v = pb.fresh_vec();
    pb.fload(f, -1, 0);
    pb.vsplat_r(v, f);
    pb.vstore(-1, 1, v);
    pb.halt();
    sim_.run(pb.finish(), mem);
    EXPECT_EQ(mem.read("out"),
              (std::vector<float>{7.5f, 7.5f, 7.5f, 7.5f}));
}

TEST_F(MachineTest, NarrowTargetUsesTwoLanes)
{
    Simulator narrow{TargetSpec::narrow_2wide()};
    Memory mem;
    mem.alloc("a", {1, 2, 3, 4});
    mem.alloc("out", 2);
    ProgramBuilder pb;
    const int v = pb.fresh_vec();
    pb.vload(v, -1, 0);
    pb.vstore(-1, 4, v);
    pb.halt();
    narrow.run(pb.finish(), mem);
    // Only two lanes move.
    EXPECT_EQ(mem.read("out"), (std::vector<float>{1, 2}));
}

TEST_F(MachineTest, VliwDualIssuesIndependentUnits)
{
    // An int op and a float op with no dependence share a bundle on the
    // VLIW target but serialize on the single-issue one.
    ProgramBuilder pb;
    const int r = pb.fresh_int();
    const int f = pb.fresh_float();
    for (int k = 0; k < 8; ++k) {
        pb.add_i(r, r, 1);       // int unit
        pb.fmov_i(f, 1.0f);      // scalar-fp unit
    }
    pb.halt();
    const Program p = pb.finish();

    Memory mem1, mem2;
    const RunResult single = sim_.run(p, mem1);
    Simulator vliw(TargetSpec::fusion_g3_vliw());
    const RunResult wide = vliw.run(p, mem2);
    EXPECT_LT(wide.cycles, single.cycles);
    // Perfect pairing: 8 bundles of 2 instead of 16 cycles.
    EXPECT_EQ(wide.cycles, 8u + 0u);
    EXPECT_EQ(single.cycles, 16u);
}

TEST_F(MachineTest, VliwSameUnitStillSerializes)
{
    // Two independent int ops occupy the same functional unit: one per
    // cycle even on the 3-slot machine.
    ProgramBuilder pb;
    const int a = pb.fresh_int();
    const int b = pb.fresh_int();
    for (int k = 0; k < 6; ++k) {
        pb.mov_i(a, k);
        pb.mov_i(b, k);
    }
    pb.halt();
    Memory mem;
    Simulator vliw(TargetSpec::fusion_g3_vliw());
    const RunResult r = vliw.run(pb.finish(), mem);
    EXPECT_EQ(r.cycles, 12u);
}

TEST_F(MachineTest, VliwRespectsDependences)
{
    // A dependent chain cannot be compressed by wider issue.
    ProgramBuilder pb;
    const int f = pb.fresh_float();
    pb.fmov_i(f, 1.0f);
    for (int k = 0; k < 5; ++k) {
        pb.fbinop(Opcode::kFMul, f, f, f);
    }
    pb.halt();
    const Program p = pb.finish();
    Memory mem1, mem2;
    const RunResult single = sim_.run(p, mem1);
    Simulator vliw(TargetSpec::fusion_g3_vliw());
    const RunResult wide = vliw.run(p, mem2);
    EXPECT_EQ(wide.cycles, single.cycles);
    // And the values agree, of course.
    EXPECT_EQ(wide.instructions, single.instructions);
}

TEST_F(MachineTest, DisassemblerCoversAllOpcodes)
{
    ProgramBuilder pb;
    pb.mov_i(0, 5);
    pb.add_i(1, 0, 2);
    pb.iadd(2, 0, 1);
    pb.imul(2, 2, 0);
    pb.imul_i(2, 2, 7);
    pb.fload(0, 0, 4);
    pb.fstore(-1, 3, 0);
    pb.fmov_i(1, 2.5f);
    pb.fmov(2, 1);
    pb.fbinop(Opcode::kFAdd, 0, 1, 2);
    pb.funop(Opcode::kFSqrt, 0, 0);
    pb.fmac(0, 1, 2);
    pb.vload(0, -1, 0);
    pb.vstore(-1, 0, 0);
    pb.vsplat(1, 0.0f);
    pb.vbinop(Opcode::kVMul, 2, 0, 1);
    pb.vunop(Opcode::kVNeg, 2, 2);
    pb.vmac(2, 0, 1);
    pb.shuf(3, 2, {0, 0, 1, 1});
    pb.sel(3, 2, 1, {0, 4, 1, 5});
    pb.vinsert(3, 2, 0);
    pb.vextract(3, 3, 1);
    auto l = pb.new_label();
    pb.bind(l);
    pb.branch_lt(0, 1, l);
    pb.branch_ge(0, 1, l);
    pb.jump(l);
    pb.halt();
    const Program p = pb.finish();
    const std::string text = disassemble(p, 4);
    // Every line carries a mnemonic; spot-check a few.
    EXPECT_NE(text.find("movi r0, 5"), std::string::npos);
    EXPECT_NE(text.find("sel v3, v2, v1, [0 4 1 5]"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              p.size());
}

TEST_F(MachineTest, RandomizedScalarProgramsMatchReference)
{
    // Property: random straight-line scalar programs compute the same
    // values as a direct C++ interpretation of the same operation list.
    Rng rng(2024);
    for (int trial = 0; trial < 30; ++trial) {
        constexpr int kRegs = 6;
        std::vector<float> ref(kRegs);
        ProgramBuilder pb;
        for (int r = 0; r < kRegs; ++r) {
            const float v = rng.uniform_float(-4.0f, 4.0f);
            ref[static_cast<std::size_t>(r)] = v;
            pb.fmov_i(r, v);
        }
        for (int step = 0; step < 25; ++step) {
            const int d = static_cast<int>(rng.uniform_int(0, kRegs - 1));
            const int a = static_cast<int>(rng.uniform_int(0, kRegs - 1));
            const int b = static_cast<int>(rng.uniform_int(0, kRegs - 1));
            const auto du = static_cast<std::size_t>(d);
            const auto au = static_cast<std::size_t>(a);
            const auto bu = static_cast<std::size_t>(b);
            switch (rng.uniform_int(0, 3)) {
              case 0:
                pb.fbinop(Opcode::kFAdd, d, a, b);
                ref[du] = ref[au] + ref[bu];
                break;
              case 1:
                pb.fbinop(Opcode::kFSub, d, a, b);
                ref[du] = ref[au] - ref[bu];
                break;
              case 2:
                pb.fbinop(Opcode::kFMul, d, a, b);
                ref[du] = ref[au] * ref[bu];
                break;
              default:
                pb.fmac(d, a, b);
                ref[du] += ref[au] * ref[bu];
                break;
            }
        }
        for (int r = 0; r < kRegs; ++r) {
            pb.fstore(-1, r, r);
        }
        pb.halt();
        Memory mem;
        mem.alloc("out", kRegs);
        sim_.run(pb.finish(), mem);
        const auto out = mem.read("out");
        for (int r = 0; r < kRegs; ++r) {
            EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(r)],
                            ref[static_cast<std::size_t>(r)])
                << "trial " << trial << " reg " << r;
        }
    }
}

}  // namespace
}  // namespace diospyros
