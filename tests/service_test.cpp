// Compile-service tests: canonical hashing, cache-key sensitivity,
// entry serialization round-trips, the two cache levels, in-flight
// coalescing, LRU eviction, determinism across worker counts, and fault
// injection inside worker threads.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "compiler/driver.h"
#include "machine/program.h"
#include "scalar/canonical.h"
#include "service/cache_key.h"
#include "service/compile_service.h"
#include "service/disk_cache.h"
#include "service/serialize.h"
#include "support/hash.h"
#include "support/sexpr.h"

namespace diospyros {
namespace {

using scalar::Kernel;
using scalar::KernelBuilder;
using service::CacheKey;
using service::CacheOutcome;
using service::CompileService;

Kernel
vector_add_kernel(std::int64_t n)
{
    KernelBuilder kb("vadd" + std::to_string(n));
    const scalar::IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for("i", scalar::IntExpr::constant(0), size,
                             {scalar::st_store(
                                 "C", i,
                                 KernelBuilder::load("A", i) +
                                     KernelBuilder::load("B", i))}));
    return kb.build();
}

/** Same program as vector_add_kernel, params declared in reverse order. */
Kernel
vector_add_kernel_reordered_params(std::int64_t n)
{
    KernelBuilder kb("vadd" + std::to_string(n));
    const scalar::IntRef pad = kb.param("z_unused", 7);
    (void)pad;
    const scalar::IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for("i", scalar::IntExpr::constant(0), size,
                             {scalar::st_store(
                                 "C", i,
                                 KernelBuilder::load("A", i) +
                                     KernelBuilder::load("B", i))}));
    return kb.build();
}

Kernel
dot_kernel(std::int64_t n)
{
    KernelBuilder kb("dot" + std::to_string(n));
    const scalar::IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", scalar::IntExpr::constant(1));
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_store("C", scalar::IntExpr::constant(0),
                               scalar::FloatExpr::constant(0.0f)));
    kb.append(scalar::st_for(
        "i", scalar::IntExpr::constant(0), size,
        {scalar::st_store("C", scalar::IntExpr::constant(0),
                          KernelBuilder::load("C",
                                              scalar::IntExpr::constant(0)) +
                              KernelBuilder::load("A", i) *
                                  KernelBuilder::load("B", i))}));
    return kb.build();
}

CompilerOptions
test_options()
{
    CompilerOptions options;
    options.limits = RunnerLimits{.node_limit = 200'000,
                                  .iter_limit = 10,
                                  .time_limit_seconds = 20.0};
    return options;
}

/** A fresh directory under the system temp dir, removed on destruction. */
struct TempDir {
    std::filesystem::path path;

    explicit TempDir(const std::string& tag)
        : path(std::filesystem::temp_directory_path() /
               ("dios_service_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }

    std::string str() const { return path.string(); }
};

std::string
asm_text(const CompiledKernel& c, const CompilerOptions& o)
{
    return disassemble(c.machine, o.target.vector_width);
}

// ---------------------------------------------------------------------------
// Satellite 1: stable hashing
// ---------------------------------------------------------------------------

TEST(StableHasher, ByteStableAndOrderSensitive)
{
    StableHasher a;
    a.str("hello").u64(42).f64(1.5);
    StableHasher b;
    b.str("hello").u64(42).f64(1.5);
    EXPECT_EQ(a.digest(), b.digest());

    StableHasher c;
    c.u64(42).str("hello").f64(1.5);
    EXPECT_NE(a.digest(), c.digest());

    // Length prefixing: ("ab","c") must not collide with ("a","bc").
    StableHasher d, e;
    d.str("ab").str("c");
    e.str("a").str("bc");
    EXPECT_NE(d.digest(), e.digest());
}

TEST(StableHasher, NegativeZeroNormalized)
{
    StableHasher a, b;
    a.f64(0.0);
    b.f64(-0.0);
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(CanonicalHash, IdenticalKernelsHashEqual)
{
    // Two independently built but semantically identical kernels.
    const std::uint64_t h1 = scalar::stable_kernel_hash(vector_add_kernel(8));
    const std::uint64_t h2 = scalar::stable_kernel_hash(vector_add_kernel(8));
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(scalar::canonical_kernel_text(vector_add_kernel(8)),
              scalar::canonical_kernel_text(vector_add_kernel(8)));
}

TEST(CanonicalHash, ParamDeclarationOrderIrrelevant)
{
    // The canonical form sorts parameters by name, so an extra parameter
    // declared before `n` lands in the same place either way; only its
    // *presence* changes the hash, not where it was declared.
    KernelBuilder ka("k");
    ka.param("m", 3);
    ka.param("n", 8);
    ka.input("A", ka.param("p", 4));
    ka.output("C", scalar::IntExpr::constant(4));
    const scalar::IntRef i = KernelBuilder::var("i");
    ka.append(scalar::st_for("i", scalar::IntExpr::constant(0),
                             scalar::IntExpr::constant(4),
                             {scalar::st_store("C", i,
                                               KernelBuilder::load("A", i))}));

    KernelBuilder kb("k");
    kb.param("n", 8);
    kb.param("m", 3);
    kb.input("A", kb.param("p", 4));
    kb.output("C", scalar::IntExpr::constant(4));
    kb.append(scalar::st_for("i", scalar::IntExpr::constant(0),
                             scalar::IntExpr::constant(4),
                             {scalar::st_store("C", i,
                                               KernelBuilder::load("A", i))}));

    EXPECT_EQ(scalar::stable_kernel_hash(ka.build()),
              scalar::stable_kernel_hash(kb.build()));
}

TEST(CanonicalHash, DifferentBodiesHashDifferently)
{
    EXPECT_NE(scalar::stable_kernel_hash(vector_add_kernel(8)),
              scalar::stable_kernel_hash(dot_kernel(8)));
    EXPECT_NE(scalar::stable_kernel_hash(vector_add_kernel(8)),
              scalar::stable_kernel_hash(vector_add_kernel(12)));
    // An extra (unused) parameter is a different spec.
    EXPECT_NE(
        scalar::stable_kernel_hash(vector_add_kernel(8)),
        scalar::stable_kernel_hash(vector_add_kernel_reordered_params(8)));
}

TEST(CanonicalHash, LiftedSpecHashStable)
{
    const scalar::LiftedSpec s1 = scalar::lift(vector_add_kernel(8));
    const scalar::LiftedSpec s2 = scalar::lift(vector_add_kernel(8));
    EXPECT_EQ(scalar::stable_spec_hash(s1), scalar::stable_spec_hash(s2));
    const scalar::LiftedSpec s3 = scalar::lift(dot_kernel(8));
    EXPECT_NE(scalar::stable_spec_hash(s1), scalar::stable_spec_hash(s3));
}

// ---------------------------------------------------------------------------
// Sexpr quoted-string atoms (cache serialization prerequisite)
// ---------------------------------------------------------------------------

TEST(SexprString, QuotedAtomRoundTrip)
{
    const std::string nasty =
        "void f() {\n  // (parens) \"quotes\" \\backslash\t;semicolon\n}\n";
    const Sexpr s = Sexpr::list(
        {Sexpr::atom("src"), Sexpr::string_atom(nasty),
         Sexpr::string_atom(""), Sexpr::string_atom("plain")});
    const Sexpr back = parse_sexpr(s.to_string());
    ASSERT_TRUE(back.is_list());
    ASSERT_EQ(back.size(), 4u);
    EXPECT_EQ(back[1].token(), nasty);
    EXPECT_EQ(back[2].token(), "");
    EXPECT_EQ(back[3].token(), "plain");
    // Serialization is a fixed point after one round trip.
    EXPECT_EQ(back.to_string(), s.to_string());
}

// ---------------------------------------------------------------------------
// Satellite 4: cache-key sensitivity
// ---------------------------------------------------------------------------

TEST(CacheKey, SensitiveToArtifactShapingOptions)
{
    const Kernel kernel = vector_add_kernel(8);
    const CompilerOptions base = test_options();
    const CacheKey k0 = service::compute_cache_key(kernel, base);

    CompilerOptions width = base;
    width.target.vector_width = 8;
    EXPECT_FALSE(k0 == service::compute_cache_key(kernel, width));

    CompilerOptions rules = base;
    rules.rules.enable_vector_rules = false;
    EXPECT_FALSE(k0 == service::compute_cache_key(kernel, rules));

    CompilerOptions nodes = base;
    nodes.limits.node_limit = 50'000;
    EXPECT_FALSE(k0 == service::compute_cache_key(kernel, nodes));

    CompilerOptions cost = base;
    cost.cost.vector_op += 1.0;
    EXPECT_FALSE(k0 == service::compute_cache_key(kernel, cost));
}

TEST(CacheKey, TimeoutAloneDoesNotChangeKey)
{
    const Kernel kernel = vector_add_kernel(8);
    const CompilerOptions base = test_options();
    const CacheKey k0 = service::compute_cache_key(kernel, base);

    CompilerOptions timeout = base;
    timeout.limits.time_limit_seconds = 123.0;
    EXPECT_TRUE(k0 == service::compute_cache_key(kernel, timeout));

    CompilerOptions deadline = base;
    deadline.deadline_seconds = 55.0;
    EXPECT_TRUE(k0 == service::compute_cache_key(kernel, deadline));
}

TEST(CacheKey, SyncedAndUnsyncedOptionsAgree)
{
    const Kernel kernel = vector_add_kernel(8);
    CompilerOptions a = test_options();
    a.target.vector_width = 8;
    CompilerOptions b = a;
    b.sync();  // a is deliberately left un-synced
    EXPECT_TRUE(service::compute_cache_key(kernel, a) ==
                service::compute_cache_key(kernel, b));
}

// ---------------------------------------------------------------------------
// Entry serialization
// ---------------------------------------------------------------------------

TEST(Serialization, EntryRoundTripsByteForByte)
{
    const Kernel kernel = dot_kernel(8);
    const CompilerOptions options = test_options();
    const CompileResult result = compile_kernel_resilient(kernel, options);
    ASSERT_TRUE(result.ok);

    const CacheKey key = service::compute_cache_key(kernel, options);
    const service::CachedEntry entry =
        service::make_entry(key, options, *result.compiled);

    const std::string text = service::entry_to_sexpr(entry).to_string();
    const service::CachedEntry back =
        service::entry_from_sexpr(parse_sexpr(text));
    EXPECT_EQ(service::entry_to_sexpr(back).to_string(), text);

    // The reconstructed kernel serves byte-identical artifacts...
    const CompiledKernel served =
        service::compiled_from_entry(kernel, back);
    EXPECT_EQ(served.c_source, result.compiled->c_source);
    EXPECT_EQ(asm_text(served, options), asm_text(*result.compiled, options));
    EXPECT_EQ(served.report.extracted_cost,
              result.compiled->report.extracted_cost);

    // ...and still computes the right answer on the simulator.
    scalar::BufferMap inputs;
    inputs["A"] = {1, 2, 3, 4, 5, 6, 7, 8};
    inputs["B"] = {8, 7, 6, 5, 4, 3, 2, 1};
    const auto run = served.run(inputs, options.target);
    const scalar::BufferMap want = scalar::run_reference(kernel, inputs);
    const OutputComparison cmp = compare_outputs(run.outputs, want);
    ASSERT_TRUE(cmp.shapes_ok()) << cmp.shape_error;
    EXPECT_LE(cmp.max_abs_error, 1e-4f);
}

TEST(Serialization, VersionMismatchRejected)
{
    const Kernel kernel = vector_add_kernel(8);
    const CompilerOptions options = test_options();
    const CompileResult result = compile_kernel_resilient(kernel, options);
    ASSERT_TRUE(result.ok);
    service::CachedEntry entry = service::make_entry(
        service::compute_cache_key(kernel, options), options,
        *result.compiled);
    entry.rule_set_version = service::kRuleSetVersion + 1;
    // The parser itself is lenient about the version; DiskCache::load is
    // the layer that rejects it. A stale rule-set version is a clean
    // *miss* (legitimately outdated, not corrupt — no quarantine).
    TempDir dir("version");
    service::DiskCache disk(dir.str());
    disk.store(entry);
    const service::LoadResult r =
        disk.load(service::compute_cache_key(kernel, options));
    EXPECT_EQ(r.status, service::LoadStatus::kMiss);
    EXPECT_FALSE(r.entry.has_value());
}

TEST(Serialization, CorruptDiskEntryIsDetected)
{
    TempDir dir("corrupt");
    service::DiskCache disk(dir.str());
    const Kernel kernel = vector_add_kernel(8);
    const CacheKey key =
        service::compute_cache_key(kernel, test_options());
    {
        std::filesystem::create_directories(
            disk.path_for(key).parent_path());
        std::ofstream out(disk.path_for(key));
        out << "(this is (not a cache entry";
    }
    const service::LoadResult r = disk.load(key);
    EXPECT_EQ(r.status, service::LoadStatus::kCorrupt);
    EXPECT_FALSE(r.entry.has_value());
    EXPECT_FALSE(r.detail.empty());
}

// ---------------------------------------------------------------------------
// Tentpole: the compile service
// ---------------------------------------------------------------------------

TEST(CompileService, DeterministicAcrossWorkerCounts)
{
    std::vector<Kernel> kernels;
    for (const std::int64_t n : {4, 8, 12}) {
        kernels.push_back(vector_add_kernel(n));
        kernels.push_back(dot_kernel(n));
    }
    const CompilerOptions options = test_options();

    auto compile_all = [&](int jobs) {
        CompileService::Options sopts;
        sopts.jobs = jobs;
        CompileService svc(sopts);
        std::vector<service::Ticket> tickets;
        for (const Kernel& k : kernels) {
            tickets.push_back(svc.submit(k, options));
        }
        std::vector<std::string> artifacts;
        for (service::Ticket& t : tickets) {
            const CompileResult& r = t.get();
            EXPECT_TRUE(r.ok) << r.error;
            artifacts.push_back(r.compiled->c_source + "\n===\n" +
                                asm_text(*r.compiled, options));
        }
        return artifacts;
    };

    const std::vector<std::string> serial = compile_all(1);
    const std::vector<std::string> parallel = compile_all(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "kernel #" << i;
    }
}

TEST(CompileService, CoalescesDuplicateInflightKeys)
{
    CompileService::Options sopts;
    sopts.jobs = 1;
    CompileService svc(sopts);
    // One worker: the first ticket occupies it (or the queue) while the
    // duplicates arrive, so they must coalesce rather than recompile.
    const Kernel kernel = dot_kernel(24);
    const CompilerOptions options = test_options();
    std::vector<service::Ticket> tickets;
    for (int i = 0; i < 5; ++i) {
        tickets.push_back(svc.submit(kernel, options));
    }
    svc.wait_idle();

    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.submitted, 5u);
    EXPECT_EQ(m.misses, 1u);  // exactly one saturation ran
    EXPECT_EQ(m.coalesced + m.memory_hits, 4u);

    // Every ticket resolves to the *same* shared result object.
    const service::ResultPtr first = tickets[0].future.get();
    ASSERT_TRUE(first->ok);
    for (service::Ticket& t : tickets) {
        if (t.outcome() == CacheOutcome::kCoalesced) {
            EXPECT_EQ(t.future.get().get(), first.get());
        }
    }
}

TEST(CompileService, MemoryCacheHitsAndLruEviction)
{
    CompileService::Options sopts;
    sopts.jobs = 1;
    sopts.memory_cache_capacity = 2;
    CompileService svc(sopts);
    const CompilerOptions options = test_options();
    const Kernel a = vector_add_kernel(4);
    const Kernel b = vector_add_kernel(8);
    const Kernel c = vector_add_kernel(12);

    svc.submit(a, options).future.wait();
    svc.submit(b, options).future.wait();
    // Touch `a` so `b` is the LRU victim when `c` arrives.
    service::Ticket hit = svc.submit(a, options);
    hit.future.wait();
    EXPECT_EQ(hit.outcome(), CacheOutcome::kMemoryHit);
    svc.submit(c, options).future.wait();

    service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.evictions, 1u);
    EXPECT_EQ(m.misses, 3u);

    // `a` survived (memory hit), `b` was evicted (recompiled).
    EXPECT_EQ(svc.submit(a, options).outcome(), CacheOutcome::kMemoryHit);
    service::Ticket again_b = svc.submit(b, options);
    again_b.future.wait();
    EXPECT_EQ(again_b.outcome(), CacheOutcome::kMiss);
    svc.wait_idle();
    EXPECT_EQ(svc.metrics().misses, 4u);
}

TEST(CompileService, DiskCacheServesAcrossServiceInstances)
{
    TempDir dir("disk");
    const Kernel kernel = dot_kernel(12);
    const CompilerOptions options = test_options();

    std::string cold_c, cold_asm;
    {
        CompileService::Options sopts;
        sopts.cache_dir = dir.str();
        CompileService svc(sopts);
        service::Ticket t = svc.submit(kernel, options);
        const CompileResult& r = t.get();
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(t.outcome(), CacheOutcome::kMiss);
        cold_c = r.compiled->c_source;
        cold_asm = asm_text(*r.compiled, options);
        EXPECT_EQ(svc.metrics().disk_writes, 1u);
    }

    // A brand-new service (fresh memory cache) must hit the disk level
    // and serve byte-identical artifacts without compiling.
    CompileService::Options sopts;
    sopts.cache_dir = dir.str();
    CompileService svc(sopts);
    service::Ticket warm = svc.submit(kernel, options);
    const CompileResult& r = warm.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(warm.outcome(), CacheOutcome::kDiskHit);
    EXPECT_EQ(r.compiled->c_source, cold_c);
    EXPECT_EQ(asm_text(*r.compiled, options), cold_asm);
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.disk_hits, 1u);
    EXPECT_EQ(m.misses, 0u);
    EXPECT_DOUBLE_EQ(m.saturation_seconds, 0.0);  // zero saturations warm
}

TEST(CompileService, TimeoutChangeStillHitsSuccessfulEntry)
{
    CompileService::Options sopts;
    CompileService svc(sopts);
    const Kernel kernel = vector_add_kernel(8);
    CompilerOptions options = test_options();
    svc.submit(kernel, options).future.wait();

    // Same kernel, wildly different wall-clock budget: the entry
    // saturated (not time-bound), so this must be a hit, not a miss.
    options.limits.time_limit_seconds = 500.0;
    options.deadline_seconds = 500.0;
    service::Ticket t = svc.submit(kernel, options);
    t.future.wait();
    EXPECT_EQ(t.outcome(), CacheOutcome::kMemoryHit);
}

TEST(CompileService, FaultArmedCompilesBypassTheCache)
{
    TempDir dir("fault");
    CompileService::Options sopts;
    sopts.jobs = 2;
    sopts.cache_dir = dir.str();
    CompileService svc(sopts);
    const Kernel kernel = vector_add_kernel(8);

    // Fault inside the worker thread: lowering blows up on rung 0, the
    // resilient driver degrades, and the service must neither cache the
    // degraded artifact nor serve it to clean requests.
    CompilerOptions faulty = test_options();
    faulty.fault_specs = {"lower.term:1"};
    service::Ticket t1 = svc.submit(kernel, faulty);
    const CompileResult& r1 = t1.get();
    EXPECT_EQ(t1.outcome(), CacheOutcome::kBypass);
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_GT(r1.fallback_level, 0);

    service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.bypasses, 1u);
    EXPECT_EQ(m.disk_writes, 0u);

    // A clean submit of the same kernel is a genuine miss (nothing was
    // cached by the bypass) and produces an undegraded artifact.
    service::Ticket t2 = svc.submit(kernel, test_options());
    const CompileResult& r2 = t2.get();
    EXPECT_EQ(t2.outcome(), CacheOutcome::kMiss);
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.fallback_level, 0);
}

TEST(CompileService, ManyFaultyJobsAcrossWorkersStayIsolated)
{
    // Several fault-armed compiles racing across 4 workers: each must
    // degrade gracefully and none may poison the cache or each other.
    CompileService::Options sopts;
    sopts.jobs = 4;
    CompileService svc(sopts);
    std::vector<service::Ticket> tickets;
    for (int i = 0; i < 8; ++i) {
        CompilerOptions faulty = test_options();
        faulty.fault_specs = {i % 2 == 0 ? "lower.term:1"
                                         : "extract.build:1"};
        tickets.push_back(svc.submit(vector_add_kernel(4 + 4 * (i % 3)),
                                     faulty));
    }
    for (service::Ticket& t : tickets) {
        const CompileResult& r = t.get();
        EXPECT_EQ(t.outcome(), CacheOutcome::kBypass);
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_GT(r.fallback_level, 0);
    }
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.bypasses, 8u);
    EXPECT_EQ(m.memory_hits + m.disk_hits + m.coalesced, 0u);
}

TEST(CompileService, UserErrorsAreCountedAndNotCached)
{
    CompileService::Options sopts;
    CompileService svc(sopts);
    CompilerOptions bad = test_options();
    bad.fault_specs = {"::not a valid fault spec::"};
    service::Ticket t = svc.submit(vector_add_kernel(8), bad);
    const CompileResult& r = t.get();
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.user_error);
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.failures, 1u);
    EXPECT_EQ(m.user_errors, 1u);
}

TEST(CompileService, BackpressureQueueDrainsWithoutDeadlock)
{
    CompileService::Options sopts;
    sopts.jobs = 2;
    sopts.queue_capacity = 1;  // every submit beyond the first blocks
    CompileService svc(sopts);
    const CompilerOptions options = test_options();
    std::vector<service::Ticket> tickets;
    for (std::int64_t n = 4; n <= 32; n += 4) {
        tickets.push_back(svc.submit(vector_add_kernel(n), options));
    }
    for (service::Ticket& t : tickets) {
        EXPECT_TRUE(t.get().ok);
    }
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.completed, m.submitted);
}

TEST(CompileService, MetricsJsonIsWellFormed)
{
    CompileService svc;
    svc.submit(vector_add_kernel(8), test_options()).future.wait();
    const std::string json = svc.metrics().to_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"submitted\":1"), std::string::npos);
    EXPECT_NE(json.find("\"misses\":1"), std::string::npos);
    EXPECT_NE(json.find("\"verifier_rejects\":0"), std::string::npos);
    EXPECT_NE(json.find("\"saturation_seconds\":"), std::string::npos);
}

TEST(CompileService, VerifierGateKeepsCorruptProgramsOutOfTheCaches)
{
    TempDir dir("verifier_gate");
    CompileService::Options sopts;
    sopts.cache_dir = dir.str();
    // Corrupt every freshly compiled program between the compiler and
    // the cache gate: an out-of-bounds shuffle lane the VIR verifier
    // must catch (V004).
    sopts.post_compile_hook = [](CompiledKernel& compiled) {
        vir::VInstr shuf;
        shuf.op = vir::VOp::kShuffle;
        shuf.dst = compiled.vprogram.fresh_vector();
        shuf.a = 0;
        shuf.lanes = {99, 0, 0, 0};
        compiled.vprogram.instrs.push_back(shuf);
    };
    CompileService svc(sopts);

    // The caller still gets the result (the compiler's own gates vouch
    // for what it produced), but neither cache level may keep it.
    service::Ticket first = svc.submit(vector_add_kernel(8), test_options());
    EXPECT_TRUE(first.get().ok);
    svc.wait_idle();
    {
        const service::ServiceMetrics m = svc.metrics();
        EXPECT_EQ(m.verifier_rejects, 1u);
        EXPECT_EQ(m.disk_writes, 0u);
        EXPECT_NE(m.to_json().find("\"verifier_rejects\":1"),
                  std::string::npos);
    }

    // Resubmission must recompile — no memory hit, no disk hit.
    service::Ticket second =
        svc.submit(vector_add_kernel(8), test_options());
    EXPECT_TRUE(second.get().ok);
    EXPECT_EQ(second.outcome(), CacheOutcome::kMiss);
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.misses, 2u);
    EXPECT_EQ(m.memory_hits, 0u);
    EXPECT_EQ(m.disk_hits, 0u);
    EXPECT_EQ(m.verifier_rejects, 2u);
}

TEST(CompileService, CleanCompilesPassTheVerifierGate)
{
    TempDir dir("verifier_clean");
    CompileService::Options sopts;
    sopts.cache_dir = dir.str();
    CompileService svc(sopts);
    svc.submit(vector_add_kernel(8), test_options()).future.wait();
    svc.wait_idle();
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.verifier_rejects, 0u);
    EXPECT_EQ(m.disk_writes, 1u);
}

}  // namespace
}  // namespace diospyros
