// Width-parametric integration sweep: the Table-1 corpus compiled at
// every supported preset width {2, 4, 8, 16}, checking per width that
//   (i) extraction is deterministic — two independent compiles produce
//       byte-identical machine code and constant pools;
//  (ii) the simulated compiled kernel agrees with the scalar reference
//       interpreter on concrete inputs;
// (iii) each width gets its own cache key, so a multi-width service can
//       never serve 4-wide code to a 16-wide client.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "compiler/driver.h"
#include "kernels/kernels.h"
#include "machine/program.h"
#include "scalar/interp.h"
#include "service/cache_key.h"

namespace diospyros {
namespace {

CompilerOptions
sweep_options(int width)
{
    CompilerOptions options;
    options.target = TargetSpec::for_width(width);
    // Tight budgets keep 21 kernels x 4 widths x 2 compiles tractable;
    // integration_test runs the heavyweight proof phases at the default
    // width, so this sweep focuses on determinism and output agreement.
    options.limits = RunnerLimits{.node_limit = 60'000,
                                  .iter_limit = 6,
                                  .time_limit_seconds = 8.0};
    return options;
}

class WidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WidthSweep, CorpusIsDeterministicAndAgreesWithReference)
{
    const int width = GetParam();
    const CompilerOptions options = sweep_options(width);
    for (const kernels::BenchmarkInstance& inst :
         kernels::table1_instances()) {
        SCOPED_TRACE(inst.label() + " @ width " + std::to_string(width));

        const CompiledKernel a = compile_kernel(inst.kernel, options);
        const CompiledKernel b = compile_kernel(inst.kernel, options);
        EXPECT_EQ(disassemble(a.machine, width),
                  disassemble(b.machine, width))
            << "extraction must be deterministic per width";
        EXPECT_EQ(a.layout.pool(), b.layout.pool());

        const scalar::BufferMap inputs =
            kernels::make_inputs(inst.kernel, 11);
        const auto run = a.run(inputs, options.target);
        const scalar::BufferMap want =
            scalar::run_reference(inst.kernel, inputs);
        for (const auto& [name, w] : want) {
            const auto it = run.outputs.find(name);
            ASSERT_NE(it, run.outputs.end()) << name;
            ASSERT_EQ(it->second.size(), w.size()) << name;
            for (std::size_t i = 0; i < w.size(); ++i) {
                const float g = it->second[i];
                const float scale =
                    std::max({1.0f, std::abs(w[i]), std::abs(g)});
                ASSERT_LE(std::abs(g - w[i]), 5e-3f * scale)
                    << name << "[" << i << "]";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, WidthSweep,
                         ::testing::Values(2, 4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                             return "w" + std::to_string(info.param);
                         });

TEST(WidthSweepExtra, WidthsGetDistinctCacheKeys)
{
    const scalar::Kernel kernel = kernels::make_qprod();
    std::set<std::string> keys;
    for (const int width : {2, 4, 8, 16}) {
        keys.insert(
            service::compute_cache_key(kernel, sweep_options(width))
                .hex());
    }
    EXPECT_EQ(keys.size(), 4u);
}

}  // namespace
}  // namespace diospyros
