// End-to-end compiler tests: every stage chained, compiled kernels
// executed on the simulator and compared against the scalar reference,
// cycle counts compared against the baselines, and translation validation
// run on the real pipeline output.

#include <gtest/gtest.h>

#include "compiler/driver.h"
#include "scalar/lower.h"
#include "support/rng.h"

namespace diospyros {
namespace {

using scalar::BufferMap;
using scalar::Kernel;
using scalar::KernelBuilder;

Kernel
vector_add_kernel(std::int64_t n)
{
    KernelBuilder kb("vadd" + std::to_string(n));
    const scalar::IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const scalar::IntRef i = KernelBuilder::var("i");
    kb.append(scalar::st_for("i", scalar::IntExpr::constant(0), size,
                             {scalar::st_store(
                                 "C", i,
                                 KernelBuilder::load("A", i) +
                                     KernelBuilder::load("B", i))}));
    return kb.build();
}

Kernel
matmul_kernel(std::int64_t n, std::int64_t m, std::int64_t p)
{
    KernelBuilder kb("matmul");
    const scalar::IntRef rn = kb.param("N", n);
    const scalar::IntRef rm = kb.param("M", m);
    const scalar::IntRef rp = kb.param("P", p);
    kb.input("A", rn * rm);
    kb.input("B", rm * rp);
    kb.output("C", rn * rp);
    const auto i = KernelBuilder::var("i");
    const auto j = KernelBuilder::var("j");
    const auto k = KernelBuilder::var("k");
    kb.append(scalar::st_for(
        "i", scalar::IntExpr::constant(0), rn,
        {scalar::st_for(
            "j", scalar::IntExpr::constant(0), rp,
            {scalar::st_for(
                "k", scalar::IntExpr::constant(0), rm,
                {scalar::st_accumulate(
                    "C", i * rp + j,
                    KernelBuilder::load("A", i * rm + k) *
                        KernelBuilder::load("B", k * rp + j))})})}));
    return kb.build();
}

BufferMap
random_inputs(const Kernel& kernel, std::uint64_t seed)
{
    Rng rng(seed);
    BufferMap out;
    for (const auto& decl :
         kernel.arrays_with_role(scalar::ArrayRole::kInput)) {
        std::vector<float> data(static_cast<std::size_t>(
            scalar::array_length(kernel, decl)));
        for (float& v : data) {
            v = rng.uniform_float(-2.0f, 2.0f);
        }
        out.emplace(decl.name.str(), std::move(data));
    }
    return out;
}

void
expect_outputs_match(const BufferMap& actual, const BufferMap& expected,
                     float tol = 1e-3f)
{
    ASSERT_EQ(actual.size(), expected.size());
    for (const auto& [name, want] : expected) {
        const auto& got = actual.at(name);
        ASSERT_EQ(got.size(), want.size()) << name;
        for (std::size_t i = 0; i < want.size(); ++i) {
            const float scale =
                std::max({1.0f, std::abs(want[i]), std::abs(got[i])});
            EXPECT_LE(std::abs(got[i] - want[i]), tol * scale)
                << name << "[" << i << "]";
        }
    }
}

CompilerOptions
test_options()
{
    CompilerOptions options;
    options.limits = RunnerLimits{.node_limit = 500'000,
                                  .iter_limit = 15,
                                  .time_limit_seconds = 30.0};
    options.validate = true;
    options.random_check = true;
    return options;
}

TEST(Compiler, VectorAddEndToEnd)
{
    const Kernel kernel = vector_add_kernel(8);
    const CompiledKernel compiled = compile_kernel(kernel, test_options());

    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);
    EXPECT_TRUE(compiled.report.random_check_passed);

    const BufferMap inputs = random_inputs(kernel, 1);
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));

    // Perfectly aligned kernel: two vector loads + add + store per chunk.
    EXPECT_EQ(run.result.count(Opcode::kVAdd), 2u);
    EXPECT_EQ(run.result.count(Opcode::kFAdd), 0u);
}

TEST(Compiler, VectorAddBeatsBaselines)
{
    const Kernel kernel = vector_add_kernel(8);
    const TargetSpec target = TargetSpec::fusion_g3_like();
    const CompiledKernel compiled = compile_kernel(kernel, test_options());
    const BufferMap inputs = random_inputs(kernel, 2);

    const auto dios = compiled.run(inputs, target);
    const auto naive = scalar::run_baseline(
        kernel, inputs, scalar::LowerMode::kNaiveParametric, target);
    const auto fixed = scalar::run_baseline(
        kernel, inputs, scalar::LowerMode::kNaiveFixed, target);

    EXPECT_LT(dios.result.cycles, fixed.result.cycles);
    EXPECT_LT(fixed.result.cycles, naive.result.cycles);
}

TEST(Compiler, MatMul2x2EndToEnd)
{
    const Kernel kernel = matmul_kernel(2, 2, 2);
    const CompiledKernel compiled = compile_kernel(kernel, test_options());
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);

    const BufferMap inputs = random_inputs(kernel, 3);
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));

    // Vectorization must kick in for the 4-wide output.
    EXPECT_GE(run.result.count(Opcode::kVMac) +
                  run.result.count(Opcode::kVMul) +
                  run.result.count(Opcode::kVAdd),
              1u);
}

TEST(Compiler, MatMul3x3EndToEnd)
{
    const Kernel kernel = matmul_kernel(3, 3, 3);
    const CompiledKernel compiled = compile_kernel(kernel, test_options());
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);

    const BufferMap inputs = random_inputs(kernel, 4);
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));

    const TargetSpec target = TargetSpec::fusion_g3_like();
    const auto fixed = scalar::run_baseline(
        kernel, inputs, scalar::LowerMode::kNaiveFixed, target);
    EXPECT_LT(run.result.cycles, fixed.result.cycles);
}

TEST(Compiler, UnalignedSizePadsOutputs)
{
    // n = 5: output pads to 8; the tail slots must not corrupt results.
    const Kernel kernel = vector_add_kernel(5);
    const CompiledKernel compiled = compile_kernel(kernel, test_options());
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);
    const BufferMap inputs = random_inputs(kernel, 5);
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));
    EXPECT_EQ(run.outputs.at("C").size(), 5u);
}

TEST(Compiler, ScalarOnlyAblationStillCorrect)
{
    // §5.6: vector rules off — symbolic evaluation + scalar rules + LVN.
    const Kernel kernel = matmul_kernel(2, 2, 2);
    CompilerOptions options = test_options();
    options.rules.enable_vector_rules = false;
    const CompiledKernel compiled = compile_kernel(kernel, options);
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);

    const BufferMap inputs = random_inputs(kernel, 6);
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));
    // No vector compute should appear.
    EXPECT_EQ(run.result.count(Opcode::kVMac), 0u);
    EXPECT_EQ(run.result.count(Opcode::kVAdd), 0u);
    EXPECT_EQ(run.result.count(Opcode::kVMul), 0u);
}

TEST(Compiler, VectorRulesBeatScalarOnly)
{
    const Kernel kernel = matmul_kernel(3, 3, 3);
    const BufferMap inputs = random_inputs(kernel, 7);
    const TargetSpec target = TargetSpec::fusion_g3_like();

    CompilerOptions scalar_only = test_options();
    scalar_only.validate = false;
    scalar_only.random_check = false;
    scalar_only.rules.enable_vector_rules = false;
    const auto no_vec =
        compile_kernel(kernel, scalar_only).run(inputs, target);

    CompilerOptions full = test_options();
    full.validate = false;
    full.random_check = false;
    const auto with_vec =
        compile_kernel(kernel, full).run(inputs, target);

    EXPECT_LT(with_vec.result.cycles, no_vec.result.cycles);
}

TEST(Compiler, NarrowTargetWorks)
{
    // Portability knob (paper §6): compile the same kernel at width 2.
    const Kernel kernel = vector_add_kernel(6);
    CompilerOptions options = test_options();
    options.target = TargetSpec::narrow_2wide();
    const CompiledKernel compiled = compile_kernel(kernel, options);
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);
    const BufferMap inputs = random_inputs(kernel, 8);
    const auto run = compiled.run(inputs, TargetSpec::narrow_2wide());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));
}

TEST(Compiler, ReportIsPopulated)
{
    const CompiledKernel compiled =
        compile_kernel(vector_add_kernel(8), test_options());
    const CompileReport& r = compiled.report;
    EXPECT_GT(r.total_seconds, 0.0);
    EXPECT_GT(r.egraph_nodes, 0u);
    EXPECT_GT(r.egraph_classes, 0u);
    EXPECT_GT(r.extracted_cost, 0.0);
    EXPECT_EQ(r.spec_elements, 8u);
    EXPECT_GT(r.memory_proxy_bytes, 0u);
    EXPECT_FALSE(compiled.c_source.empty());
    const std::string row = report_row("vadd8", r);
    EXPECT_NE(row.find("vadd8"), std::string::npos);
    EXPECT_NE(row.find("stop="), std::string::npos);
}

TEST(Compiler, CSourceLooksLikeIntrinsics)
{
    const CompiledKernel compiled =
        compile_kernel(vector_add_kernel(8), test_options());
    EXPECT_NE(compiled.c_source.find("PDX_"), std::string::npos);
    EXPECT_NE(compiled.c_source.find("void vadd8("), std::string::npos);
}

TEST(Compiler, RandomKernelsCompileCorrectly)
{
    // Property: random accumulation kernels (conv-like index patterns)
    // compile to code that matches the reference bit-for-bit-tolerance.
    Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        const std::int64_t n = rng.uniform_int(3, 6);
        const std::int64_t taps = rng.uniform_int(2, 3);
        KernelBuilder kb("rand" + std::to_string(trial));
        const auto rn = kb.param("n", n);
        const auto rt = kb.param("t", taps);
        kb.input("x", rn + rt);
        kb.input("h", rt);
        kb.output("y", rn);
        const auto i = KernelBuilder::var("i");
        const auto j = KernelBuilder::var("j");
        kb.append(scalar::st_for(
            "i", scalar::IntExpr::constant(0), rn,
            {scalar::st_for(
                "j", scalar::IntExpr::constant(0), rt,
                {scalar::st_accumulate(
                    "y", i,
                    KernelBuilder::load("x", i + j) *
                        KernelBuilder::load("h", j))})}));
        const Kernel kernel = kb.build();

        CompilerOptions options = test_options();
        const CompiledKernel compiled = compile_kernel(kernel, options);
        EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent)
            << "trial " << trial;

        const BufferMap inputs =
            random_inputs(kernel, static_cast<std::uint64_t>(trial) + 90);
        const auto run =
            compiled.run(inputs, TargetSpec::fusion_g3_like());
        expect_outputs_match(run.outputs,
                             scalar::run_reference(kernel, inputs));
    }
}

TEST(Compiler, RejectsKernelWithoutOutputs)
{
    KernelBuilder kb("no-out");
    kb.input("a", scalar::IntExpr::constant(4));
    kb.append(scalar::st_store("a", scalar::IntExpr::constant(0),
                               scalar::f_const(1)));
    // Inputs are read-only in spirit, but the lift stage is what rejects
    // a kernel with no output arrays.
    Kernel k = kb.build();
    k.arrays[0].role = scalar::ArrayRole::kScratch;
    EXPECT_THROW(compile_kernel(k, test_options()), UserError);
}

TEST(Compiler, RejectsUnsupportedVectorWidth)
{
    CompilerOptions options = test_options();
    options.target.vector_width = 32;  // > kMaxVectorWidth
    EXPECT_THROW(compile_kernel(vector_add_kernel(8), options), UserError);
    options.target.vector_width = 3;  // not a power of two
    EXPECT_THROW(compile_kernel(vector_add_kernel(8), options), UserError);
}

TEST(Compiler, ZeroIterationBudgetStillProducesCorrectCode)
{
    // An empty saturation budget degenerates to the lifted spec compiled
    // through LVN — still correct, just scalar.
    CompilerOptions options = test_options();
    options.limits.iter_limit = 0;
    const Kernel kernel = vector_add_kernel(4);
    const CompiledKernel compiled = compile_kernel(kernel, options);
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);
    const BufferMap inputs = random_inputs(kernel, 9);
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));
}

TEST(Compiler, BackoffConfigurationStaysSound)
{
    CompilerOptions options = test_options();
    options.limits.backoff_threshold = 8;
    const Kernel kernel = matmul_kernel(2, 2, 2);
    const CompiledKernel compiled = compile_kernel(kernel, options);
    EXPECT_EQ(compiled.report.validation, Verdict::kEquivalent);
    const BufferMap inputs = random_inputs(kernel, 10);
    const auto run = compiled.run(inputs, TargetSpec::fusion_g3_like());
    expect_outputs_match(run.outputs,
                         scalar::run_reference(kernel, inputs));
}

}  // namespace
}  // namespace diospyros
