// Unit and property tests for the e-graph engine: union-find, hashcons,
// congruence closure, pattern matching, rewriting, saturation, and
// extraction.

#include <gtest/gtest.h>

#include <algorithm>

#include "egraph/egraph.h"
#include "egraph/extract.h"
#include "egraph/pattern.h"
#include "egraph/rewrite.h"
#include "egraph/runner.h"
#include "ir/eval.h"
#include "rules/rules.h"
#include "support/rng.h"

namespace diospyros {
namespace {

TEST(UnionFind, BasicMerging)
{
    UnionFind uf;
    const ClassId a = uf.make_set();
    const ClassId b = uf.make_set();
    const ClassId c = uf.make_set();
    EXPECT_FALSE(uf.same(a, b));
    EXPECT_EQ(uf.merge(a, b), a);  // first argument becomes root
    EXPECT_TRUE(uf.same(a, b));
    EXPECT_FALSE(uf.same(a, c));
    uf.merge(b, c);
    EXPECT_TRUE(uf.same(a, c));
    EXPECT_EQ(uf.find(c), a);
}

TEST(UnionFind, RandomizedAgainstNaive)
{
    // Property: union-find agrees with a brute-force labeling under a
    // random sequence of merges.
    Rng rng(123);
    constexpr int kN = 100;
    UnionFind uf;
    std::vector<int> label(kN);
    for (int i = 0; i < kN; ++i) {
        uf.make_set();
        label[i] = i;
    }
    for (int step = 0; step < 200; ++step) {
        const int a = static_cast<int>(rng.uniform_int(0, kN - 1));
        const int b = static_cast<int>(rng.uniform_int(0, kN - 1));
        uf.merge(static_cast<ClassId>(a), static_cast<ClassId>(b));
        const int keep = label[a], kill = label[b];
        for (int& l : label) {
            if (l == kill) {
                l = keep;
            }
        }
        for (int i = 0; i < kN; ++i) {
            for (int j = 0; j < kN; ++j) {
                EXPECT_EQ(label[i] == label[j],
                          uf.same(static_cast<ClassId>(i),
                                  static_cast<ClassId>(j)));
            }
        }
    }
}

TEST(EGraph, HashconsDeduplicates)
{
    EGraph g;
    const ClassId a1 = g.add_term(Term::parse("(+ (Get a 0) (Get a 1))"));
    const ClassId a2 = g.add_term(Term::parse("(+ (Get a 0) (Get a 1))"));
    EXPECT_EQ(a1, a2);
    // get a0, get a1, the add: 3 classes (+1 for nothing else).
    EXPECT_EQ(g.num_classes(), 3u);
}

TEST(EGraph, MergePropagatesCongruence)
{
    // f(a) and f(b) must collapse once a = b.
    EGraph g(false);
    const ClassId a = g.add_term(Term::parse("(Get x 0)"));
    const ClassId b = g.add_term(Term::parse("(Get x 1)"));
    const ClassId fa = g.add_op(Op::kSqrt, {a});
    const ClassId fb = g.add_op(Op::kSqrt, {b});
    EXPECT_NE(g.find(fa), g.find(fb));
    g.merge(a, b);
    g.rebuild();
    EXPECT_EQ(g.find(fa), g.find(fb));
    g.check_invariants();
}

TEST(EGraph, CongruenceCascades)
{
    // g(f(a)) = g(f(b)) after a = b, two levels up.
    EGraph g(false);
    const ClassId a = g.add_term(Term::parse("(Get x 0)"));
    const ClassId b = g.add_term(Term::parse("(Get x 1)"));
    const ClassId fa = g.add_op(Op::kSqrt, {a});
    const ClassId fb = g.add_op(Op::kSqrt, {b});
    const ClassId gfa = g.add_op(Op::kNeg, {fa});
    const ClassId gfb = g.add_op(Op::kNeg, {fb});
    g.merge(a, b);
    g.rebuild();
    EXPECT_EQ(g.find(gfa), g.find(gfb));
    g.check_invariants();
}

TEST(EGraph, ConstantFoldingDerivesValues)
{
    EGraph g;
    const ClassId id = g.add_term(Term::parse("(+ 2 (* 3 4))"));
    g.rebuild();
    ASSERT_TRUE(g.constant_of(id).has_value());
    EXPECT_EQ(*g.constant_of(id), Rational(14));
}

TEST(EGraph, ConstantFoldingUnifiesEqualConstants)
{
    EGraph g;
    const ClassId a = g.add_term(Term::parse("(+ 1 1)"));
    const ClassId b = g.add_term(Term::parse("(* 1 2)"));
    g.rebuild();
    EXPECT_EQ(g.find(a), g.find(b));
    g.check_invariants();
}

TEST(EGraph, ConstantFoldingSkipsDivByZero)
{
    EGraph g;
    const ClassId id = g.add_term(Term::parse("(/ 1 0)"));
    g.rebuild();
    EXPECT_FALSE(g.constant_of(id).has_value());
}

TEST(EGraph, RandomizedInvariantsUnderMergesAndAdds)
{
    // Property: after arbitrary interleavings of adds and merges plus a
    // rebuild, all invariants hold.
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        EGraph g;
        std::vector<ClassId> ids;
        for (int i = 0; i < 8; ++i) {
            ids.push_back(g.add_get(Symbol("a"), i));
        }
        for (int step = 0; step < 60; ++step) {
            const int action = static_cast<int>(rng.uniform_int(0, 2));
            if (action == 0 && ids.size() >= 2) {
                const auto x = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<int>(ids.size()) - 1));
                const auto y = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<int>(ids.size()) - 1));
                g.merge(ids[x], ids[y]);
            } else {
                const auto x = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<int>(ids.size()) - 1));
                const auto y = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<int>(ids.size()) - 1));
                const Op op = (action == 1) ? Op::kAdd : Op::kMul;
                ids.push_back(g.add_op(op, {ids[x], ids[y]}));
            }
        }
        g.rebuild();
        g.check_invariants();
    }
}

TEST(Pattern, ParsesVariablesAndLiterals)
{
    const Pattern p = Pattern::parse("(+ ?a (* ?b 0))");
    EXPECT_EQ(p.variables().size(), 2u);
    EXPECT_EQ(p.to_string(), "(+ ?a (* ?b 0))");
}

TEST(Pattern, MatchesSimpleExpression)
{
    EGraph g;
    const ClassId id =
        g.add_term(Term::parse("(+ (Get a 0) (* (Get b 0) (Get c 0)))"));
    g.rebuild();
    const Pattern p = Pattern::parse("(+ ?x (* ?y ?z))");
    const auto matches = p.match_class(g, id);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].bindings().size(), 3u);
}

TEST(Pattern, NonlinearPatternsRequireConsistency)
{
    EGraph g;
    const ClassId same = g.add_term(Term::parse("(+ (Get a 0) (Get a 0))"));
    const ClassId diff = g.add_term(Term::parse("(+ (Get a 0) (Get a 1))"));
    g.rebuild();
    const Pattern p = Pattern::parse("(+ ?x ?x)");
    EXPECT_EQ(p.match_class(g, same).size(), 1u);
    EXPECT_TRUE(p.match_class(g, diff).empty());
}

TEST(Pattern, MatchesAcrossEquivalentNodes)
{
    // After merging, matching sees through the equivalence.
    EGraph g;
    const ClassId x = g.add_term(Term::parse("(Get a 0)"));
    const ClassId y = g.add_term(Term::parse("(* (Get b 0) (Get c 0))"));
    const ClassId sum = g.add_op(Op::kAdd, {x, y});
    g.merge(x, y);  // pretend a rule proved them equal
    g.rebuild();
    const Pattern p = Pattern::parse("(+ (* ?p ?q) (* ?r ?s))");
    EXPECT_EQ(p.match_class(g, g.find(sum)).size(), 1u);
}

TEST(Rewrite, RejectsUnboundRhsVariables)
{
    EXPECT_THROW(Rewrite::make("bad", "(+ ?a ?b)", "(+ ?a ?c)"), UserError);
}

TEST(Rewrite, AppliesCommutativity)
{
    EGraph g;
    const ClassId ab = g.add_term(Term::parse("(+ (Get a 0) (Get b 0))"));
    const ClassId ba = g.add_term(Term::parse("(+ (Get b 0) (Get a 0))"));
    g.rebuild();
    EXPECT_NE(g.find(ab), g.find(ba));

    const Rewrite comm = Rewrite::make("comm", "(+ ?a ?b)", "(+ ?b ?a)");
    Runner runner;
    const RunnerReport report = runner.run(g, {comm});
    EXPECT_EQ(report.stop_reason, StopReason::kSaturated);
    EXPECT_EQ(g.find(ab), g.find(ba));
    g.check_invariants();
}

TEST(Runner, SaturatesMacFusion)
{
    // The paper's fused multiply-accumulate example (Figure 4).
    EGraph g;
    const ClassId root = g.add_term(Term::parse(
        "(VecAdd (Vec (Get v1 0) (Get v1 1)) (VecMul (Vec (Get v2 0) (Get "
        "v2 1)) (Vec (Get v3 0) (Get v3 1))))"));
    g.rebuild();
    const Rewrite mac = Rewrite::make("mac", "(VecAdd ?a (VecMul ?b ?c))",
                                      "(VecMAC ?a ?b ?c)");
    Runner runner;
    runner.run(g, {mac});

    // The root class must now contain a VecMAC node.
    bool found = false;
    for (const ENode& n : g.eclass(g.find(root)).nodes) {
        found |= n.op == Op::kVecMAC;
    }
    EXPECT_TRUE(found);
}

namespace {

/** A left-leaning 8-leaf sum; AC rules explode its e-graph for a while. */
TermRef
wide_sum()
{
    TermRef t = t_get("a", 0);
    for (int i = 1; i < 8; ++i) {
        t = t_add(t, t_get("a", i));
    }
    return t;
}

std::vector<Rewrite>
ac_rules()
{
    std::vector<Rewrite> rules;
    rules.push_back(Rewrite::make("comm", "(+ ?a ?b)", "(+ ?b ?a)"));
    rules.push_back(
        Rewrite::make("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"));
    return rules;
}

}  // namespace

TEST(Runner, RespectsIterLimit)
{
    // AC over an 8-leaf sum keeps creating classes for several rounds
    // (this is the paper §3.3 AC blow-up); a 2-iteration limit must stop
    // it mid-way.
    EGraph g(false);
    g.add_term(wide_sum());
    g.rebuild();
    Runner runner(RunnerLimits{.node_limit = 100'000'000,
                               .iter_limit = 2,
                               .time_limit_seconds = 60.0});
    const RunnerReport report = runner.run(g, ac_rules());
    EXPECT_EQ(report.stop_reason, StopReason::kIterLimit);
    EXPECT_EQ(report.iterations.size(), 2u);
}

TEST(Runner, ZeroIterLimitReportsIterLimitNotSaturation)
{
    // Regression: with iter_limit = 0 the loop never executes — the
    // graph was *not* saturated, the budget stopped it. The untouched
    // graph must still support extraction.
    EGraph g(false);
    const ClassId root = g.add_term(wide_sum());
    g.rebuild();
    Runner runner(RunnerLimits{.node_limit = 100'000,
                               .iter_limit = 0,
                               .time_limit_seconds = 60.0});
    const RunnerReport report = runner.run(g, ac_rules());
    EXPECT_EQ(report.stop_reason, StopReason::kIterLimit);
    EXPECT_TRUE(report.iterations.empty());

    const TreeSizeCost cost;
    const Extractor extractor(g, cost);
    const Extraction best = extractor.extract(g.find(root));
    ASSERT_NE(best.term, nullptr);
    // 8 Get leaves + 7 additions.
    EXPECT_EQ(best.cost, 15.0);
}

TEST(Runner, MemoryLimitStopsSaturation)
{
    EGraph g(false);
    g.add_term(wide_sum());
    g.rebuild();
    Runner runner(RunnerLimits{.node_limit = 100'000'000,
                               .iter_limit = 1000,
                               .time_limit_seconds = 60.0,
                               .memory_limit_bytes = 64 * 1024});
    const RunnerReport report = runner.run(g, ac_rules());
    EXPECT_EQ(report.stop_reason, StopReason::kMemoryLimit);
    EXPECT_LT(report.iterations.size(), 1000u);
}

TEST(Runner, ExpiredDeadlineStopsGracefully)
{
    // An already-expired compile-wide deadline: the runner must stop with
    // kDeadline and still leave a clean, extractable graph.
    EGraph g(false);
    const ClassId root = g.add_term(wide_sum());
    g.rebuild();
    Runner runner(RunnerLimits{.node_limit = 100'000'000,
                               .iter_limit = 1000,
                               .time_limit_seconds = 60.0});
    const RunnerReport report =
        runner.run(g, ac_rules(), Deadline::after_seconds(0.0));
    EXPECT_EQ(report.stop_reason, StopReason::kDeadline);
    EXPECT_TRUE(g.is_clean());
    const TreeSizeCost cost;
    const Extractor extractor(g, cost);
    EXPECT_NE(extractor.extract(g.find(root)).term, nullptr);
}

TEST(Runner, RespectsNodeLimit)
{
    EGraph g(false);
    g.add_term(wide_sum());
    g.rebuild();
    Runner runner(RunnerLimits{.node_limit = 100,
                               .iter_limit = 1000,
                               .time_limit_seconds = 60.0});
    const RunnerReport report = runner.run(g, ac_rules());
    EXPECT_EQ(report.stop_reason, StopReason::kNodeLimit);
    // Overshoot within one iteration is expected (limits are checked per
    // batch), but the runner must have stopped promptly afterwards.
    EXPECT_LT(report.iterations.size(), 1000u);
}

TEST(Runner, MatchLimitCapsWorkPerRule)
{
    // With a per-rule match cap, each iteration applies at most that many
    // matches — the graph grows, but strictly slower than uncapped.
    EGraph g1(false), g2(false);
    g1.add_term(wide_sum());
    g2.add_term(wide_sum());
    g1.rebuild();
    g2.rebuild();
    RunnerLimits capped{.node_limit = 1'000'000,
                        .iter_limit = 3,
                        .time_limit_seconds = 30.0,
                        .match_limit_per_rule = 2};
    RunnerLimits uncapped{.node_limit = 1'000'000,
                          .iter_limit = 3,
                          .time_limit_seconds = 30.0};
    Runner(capped).run(g1, ac_rules());
    Runner(uncapped).run(g2, ac_rules());
    EXPECT_LT(g1.num_nodes(), g2.num_nodes());
}

TEST(Runner, BackoffBansExplosiveRules)
{
    // With a backoff threshold, an AC rule that floods the graph gets
    // banned for growing windows; the run still makes progress but grows
    // far slower, and the runner never falsely reports saturation while
    // rules are banned.
    EGraph g1(false), g2(false);
    g1.add_term(wide_sum());
    g2.add_term(wide_sum());
    g1.rebuild();
    g2.rebuild();
    RunnerLimits backoff{.node_limit = 1'000'000,
                         .iter_limit = 4,
                         .time_limit_seconds = 30.0,
                         .match_limit_per_rule = 0,
                         .backoff_threshold = 4};
    RunnerLimits plain{.node_limit = 1'000'000,
                       .iter_limit = 4,
                       .time_limit_seconds = 30.0};
    const RunnerReport rb = Runner(backoff).run(g1, ac_rules());
    Runner(plain).run(g2, ac_rules());
    EXPECT_LT(g1.num_nodes(), g2.num_nodes());
    // Some iteration must have recorded a ban.
    std::size_t banned = 0;
    for (const IterationStats& it : rb.iterations) {
        banned += it.banned_rules;
    }
    EXPECT_GT(banned, 0u);
    EXPECT_NE(rb.stop_reason, StopReason::kSaturated);
}

TEST(Extract, PrefersCheaperEquivalent)
{
    EGraph g;
    const ClassId id = g.add_term(
        Term::parse("(+ (* (Get a 0) 2) (* (Get a 0) 0))"));
    g.rebuild();
    std::vector<Rewrite> rules;
    rules.push_back(Rewrite::make("mul0", "(* ?x 0)", "0"));
    rules.push_back(Rewrite::make("add0", "(+ ?x 0)", "?x"));
    Runner().run(g, rules);

    const TreeSizeCost cost;
    const Extractor ex(g, cost);
    const Extraction best = ex.extract(g.find(id));
    EXPECT_EQ(Term::to_string(best.term), "(* (Get a 0) 2)");
    EXPECT_DOUBLE_EQ(best.cost, 3.0);
}

TEST(Extract, HandlesCyclicClasses)
{
    // x = x + 0 introduces a cycle through the class; extraction must
    // still terminate and pick the finite leaf.
    EGraph g;
    const ClassId id = g.add_term(Term::parse("(+ (Get a 0) 0)"));
    g.rebuild();
    Runner().run(g, {Rewrite::make("add0", "(+ ?x 0)", "?x")});
    const TreeSizeCost cost;
    const Extractor ex(g, cost);
    const Extraction best = ex.extract(g.find(id));
    EXPECT_EQ(Term::to_string(best.term), "(Get a 0)");
}

TEST(Extract, ExtractionIsSemanticallyEquivalent)
{
    // Property: for a random expression and sound rules, the extracted
    // term evaluates identically to the original.
    Rng rng(99);
    EvalEnv env;
    env.bind_array("a", {1.5, -2.0, 3.25, 0.5});
    std::vector<Rewrite> rules;
    rules.push_back(Rewrite::make("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"));
    rules.push_back(Rewrite::make("comm-mul", "(* ?a ?b)", "(* ?b ?a)"));
    rules.push_back(Rewrite::make("add0", "(+ ?x 0)", "?x"));
    rules.push_back(Rewrite::make("mul1", "(* ?x 1)", "?x"));

    for (int trial = 0; trial < 10; ++trial) {
        // Random small term over Get a i, constants 0/1, +, *.
        std::vector<TermRef> pool;
        for (int i = 0; i < 4; ++i) {
            pool.push_back(t_get("a", i));
        }
        pool.push_back(t_const(0));
        pool.push_back(t_const(1));
        for (int step = 0; step < 10; ++step) {
            const auto x = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(pool.size()) - 1));
            const auto y = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(pool.size()) - 1));
            pool.push_back(rng.uniform_int(0, 1) ? t_add(pool[x], pool[y])
                                                 : t_mul(pool[x], pool[y]));
        }
        const TermRef original = pool.back();
        EGraph g;
        const ClassId root = g.add_term(original);
        g.rebuild();
        Runner(RunnerLimits{.node_limit = 20'000,
                            .iter_limit = 8,
                            .time_limit_seconds = 5.0})
            .run(g, rules);
        const TreeSizeCost cost;
        const Extractor ex(g, cost);
        const Extraction best = ex.extract(g.find(root));
        EXPECT_DOUBLE_EQ(evaluate_scalar(best.term, env),
                         evaluate_scalar(original, env));
        EXPECT_LE(Term::tree_size(best.term), Term::tree_size(original));
    }
}

TEST(EGraph, DotExportIsWellFormed)
{
    EGraph g;
    const ClassId root =
        g.add_term(Term::parse("(+ (Get a 0) (* (Get a 1) 2))"));
    g.rebuild();
    (void)root;
    const std::string dot = g.to_dot();
    EXPECT_EQ(dot.rfind("digraph egraph {", 0), 0u);
    EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
    EXPECT_NE(dot.find("(Get a 0)") != std::string::npos ||
                  dot.find("Get a 0") != std::string::npos,
              false);
    EXPECT_NE(dot.find("->"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
}

TEST(EGraph, AddTermHandlesLargeSharedDags)
{
    // A deep shared DAG must insert in linear time/nodes.
    TermRef t = t_add(t_get("a", 0), t_get("a", 1));
    for (int i = 0; i < 200; ++i) {
        t = t_add(t, t);
    }
    EGraph g;
    g.add_term(t);
    g.rebuild();
    EXPECT_EQ(g.num_classes(), 203u);
    g.check_invariants();
}

// ---------------------------------------------------------------------------
// Op-index: the e-matching fast path (classes_with_op).

/** Ground truth for classes_with_op: full scan in class_ids() order. */
std::vector<ClassId>
classes_holding(const EGraph& g, Op op)
{
    std::vector<ClassId> out;
    for (const ClassId id : g.class_ids()) {
        for (const ENode& n : g.eclass(id).nodes) {
            if (n.op == op) {
                out.push_back(id);
                break;
            }
        }
    }
    return out;
}

TEST(OpIndex, ListsClassesInCreationOrder)
{
    EGraph g(false);
    const ClassId g0 = g.add_get(Symbol("a"), 0);
    const ClassId g1 = g.add_get(Symbol("a"), 1);
    const ClassId sum = g.add_op(Op::kAdd, {g0, g1});
    const ClassId prod = g.add_op(Op::kMul, {g0, g1});
    g.rebuild();
    EXPECT_EQ(g.classes_with_op(Op::kGet), (std::vector<ClassId>{g0, g1}));
    EXPECT_EQ(g.classes_with_op(Op::kAdd), std::vector<ClassId>{sum});
    EXPECT_EQ(g.classes_with_op(Op::kMul), std::vector<ClassId>{prod});
    EXPECT_TRUE(g.classes_with_op(Op::kVec).empty());
}

TEST(OpIndex, StaysCanonicalAndCompleteAcrossMerges)
{
    // After a merge the absorbed class's journal entries must
    // re-canonicalize to the surviving id, deduplicated, and the merged
    // class must be listed under every op either side contributed.
    EGraph g(false);
    const ClassId g0 = g.add_get(Symbol("a"), 0);
    const ClassId g1 = g.add_get(Symbol("a"), 1);
    const ClassId sum = g.add_op(Op::kAdd, {g0, g1});
    g.merge(sum, g0);  // pretend a rule proved (+ a0 a1) = a0
    g.rebuild();
    const ClassId root = g.find(sum);
    EXPECT_EQ(g.classes_with_op(Op::kAdd), std::vector<ClassId>{root});
    EXPECT_EQ(g.classes_with_op(Op::kGet),
              (std::vector<ClassId>{root, g.find(g1)}));
}

TEST(OpIndex, AgreesWithFullScanOnRandomGraphs)
{
    // Property: under arbitrary interleavings of adds, merges, and
    // rebuilds, the op-index equals a recomputed full scan for every op.
    Rng rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        EGraph g(false);
        std::vector<ClassId> ids;
        for (int i = 0; i < 6; ++i) {
            ids.push_back(g.add_get(Symbol("a"), i));
            ids.push_back(g.add_get(Symbol("b"), i));
        }
        for (int step = 0; step < 80; ++step) {
            const auto pick = [&] {
                return ids[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<int>(ids.size()) - 1))];
            };
            switch (rng.uniform_int(0, 4)) {
              case 0:
                g.merge(pick(), pick());
                break;
              case 1:
                ids.push_back(g.add_op(Op::kAdd, {pick(), pick()}));
                break;
              case 2:
                ids.push_back(g.add_op(Op::kMul, {pick(), pick()}));
                break;
              case 3:
                ids.push_back(g.add_op(Op::kNeg, {pick()}));
                break;
              default:
                g.rebuild();
                for (int op_i = 0; op_i < kNumOps; ++op_i) {
                    const Op op = static_cast<Op>(op_i);
                    EXPECT_EQ(g.classes_with_op(op), classes_holding(g, op));
                }
                break;
            }
        }
        g.rebuild();
        g.check_invariants();
        for (int op_i = 0; op_i < kNumOps; ++op_i) {
            const Op op = static_cast<Op>(op_i);
            EXPECT_EQ(g.classes_with_op(op), classes_holding(g, op));
        }
    }
}

TEST(OpIndex, TracksConstantsInjectedByAnalysis)
{
    // The constant-folding analysis injects Const nodes via modify(),
    // not add(); those classes must still appear under kConst.
    EGraph g;
    const ClassId id = g.add_term(Term::parse("(+ 2 (* 3 4))"));
    g.rebuild();
    const std::vector<ClassId>& consts = g.classes_with_op(Op::kConst);
    EXPECT_NE(std::find(consts.begin(), consts.end(), g.find(id)),
              consts.end());
    EXPECT_EQ(consts, classes_holding(g, Op::kConst));
}

// ---------------------------------------------------------------------------
// Differential: indexed search must equal the naive full scan, for every
// registered rule (pattern searchers and the custom vectorization
// searchers alike), and saturation must produce identical graphs.

/**
 * A random vectorizable e-graph: scalar expressions over two arrays,
 * width-4 Vec roots and vector ops over them, plus a few merges to create
 * aliased classes. Constant folding off so random merges cannot trip the
 * analysis soundness assert.
 */
EGraph
random_vec_graph(Rng& rng)
{
    EGraph g(false);
    std::vector<ClassId> scalars;
    for (int i = 0; i < 4; ++i) {
        scalars.push_back(g.add_get(Symbol("a"), i));
        scalars.push_back(g.add_get(Symbol("b"), i));
    }
    scalars.push_back(g.add_const(Rational(0)));
    scalars.push_back(g.add_const(Rational(1)));
    const auto pick = [&] {
        return scalars[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(scalars.size()) - 1))];
    };
    for (int step = 0; step < 24; ++step) {
        switch (rng.uniform_int(0, 3)) {
          case 0:
            scalars.push_back(g.add_op(Op::kAdd, {pick(), pick()}));
            break;
          case 1:
            scalars.push_back(g.add_op(Op::kMul, {pick(), pick()}));
            break;
          case 2:
            scalars.push_back(g.add_op(Op::kNeg, {pick()}));
            break;
          default:
            scalars.push_back(g.add_op(Op::kDiv, {pick(), pick()}));
            break;
        }
    }
    std::vector<ClassId> vecs;
    for (int v = 0; v < 4; ++v) {
        vecs.push_back(
            g.add_op(Op::kVec, {pick(), pick(), pick(), pick()}));
    }
    g.add_op(Op::kVecAdd, {vecs[0], vecs[1]});
    g.add_op(Op::kVecMul, {vecs[2], vecs[3]});
    g.add_op(Op::kList, {vecs[0], vecs[2]});
    for (int m = 0; m < 3; ++m) {
        g.merge(pick(), pick());
    }
    g.rebuild();
    return g;
}

TEST(OpIndex, IndexedSearchEqualsNaiveForEveryRule)
{
    RuleConfig config(4);
    config.target_has_recip = true;
    const std::vector<Rewrite> rules = build_rules(config);
    Rng rng(42);
    for (int trial = 0; trial < 6; ++trial) {
        const EGraph g = random_vec_graph(rng);
        for (const Rewrite& rule : rules) {
            const std::vector<RuleMatch> indexed =
                rule.searcher().search(g);
            const std::vector<RuleMatch> naive =
                rule.searcher().search_naive(g);
            ASSERT_EQ(indexed.size(), naive.size())
                << "rule " << rule.name() << ", trial " << trial;
            for (std::size_t i = 0; i < indexed.size(); ++i) {
                EXPECT_EQ(g.find_const(indexed[i].root),
                          g.find_const(naive[i].root))
                    << "rule " << rule.name();
                EXPECT_TRUE(indexed[i].subst.bindings() ==
                            naive[i].subst.bindings())
                    << "rule " << rule.name();
            }
        }
    }
}

TEST(OpIndex, SaturationWithIndexMatchesNaiveByteForByte)
{
    // End to end: saturate two copies of the same graph, one through the
    // op-indexed searchers and one forced down the full-scan path. The
    // final graphs and the extracted programs must agree exactly.
    RuleConfig config(4);
    const std::vector<Rewrite> rules = build_rules(config);
    std::vector<Rewrite> naive_rules;
    naive_rules.reserve(rules.size());
    for (const Rewrite& r : rules) {
        naive_rules.push_back(r.with_naive_search());
    }
    const RunnerLimits limits{.node_limit = 50'000,
                              .iter_limit = 6,
                              .time_limit_seconds = 30.0};
    Rng rng_a(7), rng_b(7);
    for (int trial = 0; trial < 4; ++trial) {
        EGraph ga = random_vec_graph(rng_a);
        EGraph gb = random_vec_graph(rng_b);
        const ClassId roota = ga.class_ids().back();
        const ClassId rootb = gb.class_ids().back();
        ASSERT_EQ(roota, rootb);
        const RunnerReport ra = Runner(limits).run(ga, rules);
        const RunnerReport rb = Runner(limits).run(gb, naive_rules);
        EXPECT_EQ(ra.stop_reason, rb.stop_reason);
        EXPECT_EQ(ga.num_nodes(), gb.num_nodes());
        EXPECT_EQ(ga.num_classes(), gb.num_classes());
        std::size_t matches_a = 0, matches_b = 0;
        for (const RuleStats& s : ra.rule_stats) {
            matches_a += s.matches;
        }
        for (const RuleStats& s : rb.rule_stats) {
            matches_b += s.matches;
        }
        EXPECT_EQ(matches_a, matches_b);
        const TreeSizeCost cost;
        const Extractor ea(ga, cost), eb(gb, cost);
        const Extraction besta = ea.extract(ga.find(roota));
        const Extraction bestb = eb.extract(gb.find(rootb));
        EXPECT_EQ(Term::to_string(besta.term), Term::to_string(bestb.term));
        EXPECT_DOUBLE_EQ(besta.cost, bestb.cost);
    }
}

// ---------------------------------------------------------------------------
// Stop-reason regression (S1).

TEST(Runner, DeadlineMidSearchIsNotReportedAsSaturation)
{
    // An expired deadline makes phase 1 stop after the *first* rule. That
    // rule finds nothing, so the iteration changes nothing — but the
    // second rule was never searched and would have matched, so reporting
    // kSaturated here would be false. Must report kDeadline.
    EGraph g(false);
    g.add_term(Term::parse("(+ (Get a 0) (Get a 1))"));
    g.rebuild();
    std::vector<Rewrite> rules;
    rules.push_back(
        Rewrite::make("never", "(sqrt (sqrt ?x))", "(sqrt (sqrt ?x))"));
    rules.push_back(Rewrite::make("comm", "(+ ?a ?b)", "(+ ?b ?a)"));
    Runner runner(RunnerLimits{.node_limit = 100'000,
                               .iter_limit = 100,
                               .time_limit_seconds = 60.0});
    const RunnerReport report =
        runner.run(g, rules, Deadline::after_seconds(0.0));
    EXPECT_EQ(report.stop_reason, StopReason::kDeadline);
    EXPECT_TRUE(g.is_clean());
}

// ---------------------------------------------------------------------------
// Deep-chain extraction regression.

TEST(Extract, DeepChainDoesNotOverflowTheStack)
{
    // A ~50k-deep unshared accumulation chain: extraction (and the
    // resulting term's destruction) must both run iteratively.
    constexpr int kDepth = 50'000;
    TermRef t = t_get("a", 0);
    for (int i = 0; i < kDepth; ++i) {
        t = t_add(t, t_get("a", i % 4));
    }
    EGraph g(false);
    const ClassId root = g.add_term(t);
    g.rebuild();
    const TreeSizeCost cost;
    const Extractor ex(g, cost);
    const Extraction best = ex.extract(g.find(root));
    ASSERT_NE(best.term, nullptr);
    EXPECT_EQ(Term::dag_size(best.term), static_cast<std::size_t>(kDepth) + 4);
    t.reset();  // the original chain's teardown must be iterative too
}

}  // namespace
}  // namespace diospyros
