// Tests for the backend: term lowering (gather planning), LVN, machine
// emission, and the C-intrinsics printer. Lowered programs are executed
// on the simulator and compared with the reference evaluator.

#include <gtest/gtest.h>

#include "ir/eval.h"
#include "machine/sim.h"
#include "support/rng.h"
#include "vir/cprint.h"
#include "vir/emit.h"
#include "vir/lower_term.h"
#include "vir/lvn.h"

namespace diospyros::vir {
namespace {

/** A 1-input/1-output pseudo-kernel for layout purposes. */
scalar::Kernel
io_kernel(const std::vector<std::pair<std::string, std::int64_t>>& inputs,
          std::int64_t out_len)
{
    scalar::KernelBuilder kb("vir-test");
    for (const auto& [name, len] : inputs) {
        kb.input(name, scalar::IntExpr::constant(len));
    }
    kb.output("out", scalar::IntExpr::constant(out_len));
    // Body unused: we lower hand-written terms against this signature.
    kb.append(scalar::st_store("out", scalar::IntExpr::constant(0),
                               scalar::f_const(0)));
    return kb.build();
}

/** Lowers `term`, runs LVN + emission + simulation, returns outputs. */
std::vector<float>
run_term(const TermRef& term, const scalar::Kernel& kernel,
         std::int64_t out_len, const scalar::BufferMap& inputs,
         int width = 4, RunResult* stats = nullptr,
         VProgram* vprog_out = nullptr)
{
    const std::int64_t padded = (out_len + width - 1) / width * width;
    std::vector<OutputSlot> slots{{"out", out_len, padded}};
    VProgram vp = lower_term(term, width, slots,
                             TargetSpec::fusion_g3_like().has_scalar_mac);
    run_lvn(vp);
    CompiledLayout layout = CompiledLayout::make(kernel, width);
    const Program prog =
        emit_machine(vp, layout, TargetSpec::fusion_g3_like());
    Memory mem = layout.make_memory(inputs);
    Simulator sim(TargetSpec::fusion_g3_like());
    const RunResult r = sim.run(prog, mem);
    if (stats != nullptr) {
        *stats = r;
    }
    if (vprog_out != nullptr) {
        *vprog_out = std::move(vp);
    }
    return layout.read_outputs(mem).at("out");
}

TEST(LowerTerm, ContiguousVecBecomesOneLoad)
{
    const scalar::Kernel k = io_kernel({{"a", 8}}, 4);
    RunResult stats;
    const auto out = run_term(
        Term::parse("(List (Vec (Get a 4) (Get a 5) (Get a 6) (Get a 7)))"),
        k, 4, {{"a", {0, 1, 2, 3, 4, 5, 6, 7}}}, 4, &stats);
    EXPECT_EQ(out, (std::vector<float>{4, 5, 6, 7}));
    EXPECT_EQ(stats.count(Opcode::kVLoad), 1u);
    EXPECT_EQ(stats.count(Opcode::kShuf), 0u);
    EXPECT_EQ(stats.count(Opcode::kSel), 0u);
}

TEST(LowerTerm, SingleArrayGatherUsesShuffle)
{
    const scalar::Kernel k = io_kernel({{"a", 4}}, 4);
    RunResult stats;
    const auto out = run_term(
        Term::parse("(List (Vec (Get a 3) (Get a 1) (Get a 2) (Get a 0)))"),
        k, 4, {{"a", {10, 11, 12, 13}}}, 4, &stats);
    EXPECT_EQ(out, (std::vector<float>{13, 11, 12, 10}));
    EXPECT_EQ(stats.count(Opcode::kVLoad), 1u);
    EXPECT_EQ(stats.count(Opcode::kShuf), 1u);
}

TEST(LowerTerm, CrossBlockGatherUsesSelect)
{
    // Lanes from blocks 0 and 1 of the same array: the paper's Figure 2
    // select pattern.
    const scalar::Kernel k = io_kernel({{"a", 8}}, 4);
    RunResult stats;
    const auto out = run_term(
        Term::parse("(List (Vec (Get a 6) (Get a 7) (Get a 0) (Get a 1)))"),
        k, 4, {{"a", {0, 1, 2, 3, 4, 5, 6, 7}}}, 4, &stats);
    EXPECT_EQ(out, (std::vector<float>{6, 7, 0, 1}));
    EXPECT_EQ(stats.count(Opcode::kVLoad), 2u);
    EXPECT_EQ(stats.count(Opcode::kSel), 1u);
}

TEST(LowerTerm, ThreeBlockGatherNeedsNestedSelects)
{
    const scalar::Kernel k = io_kernel({{"a", 12}}, 4);
    RunResult stats;
    const auto out = run_term(
        Term::parse(
            "(List (Vec (Get a 0) (Get a 5) (Get a 10) (Get a 1)))"),
        k, 4, {{"a", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}}}, 4, &stats);
    EXPECT_EQ(out, (std::vector<float>{0, 5, 10, 1}));
    EXPECT_EQ(stats.count(Opcode::kVLoad), 3u);
    EXPECT_EQ(stats.count(Opcode::kSel), 2u);  // nested selects
}

TEST(LowerTerm, CrossArrayGather)
{
    const scalar::Kernel k = io_kernel({{"a", 4}, {"b", 4}}, 4);
    const auto out = run_term(
        Term::parse("(List (Vec (Get a 1) (Get b 2) (Get a 0) (Get b 3)))"),
        k, 4, {{"a", {1, 2, 3, 4}}, {"b", {10, 20, 30, 40}}});
    EXPECT_EQ(out, (std::vector<float>{2, 30, 1, 40}));
}

TEST(LowerTerm, ConstantLanesRideLiteralVectors)
{
    const scalar::Kernel k = io_kernel({{"a", 4}}, 4);
    const auto out = run_term(
        Term::parse("(List (Vec (Get a 0) 0 5 (Get a 3)))"), k, 4,
        {{"a", {1, 2, 3, 4}}});
    EXPECT_EQ(out, (std::vector<float>{1, 0, 5, 4}));
}

TEST(LowerTerm, ScalarLanesAreInserted)
{
    const scalar::Kernel k = io_kernel({{"a", 4}}, 4);
    const auto out = run_term(
        Term::parse("(List (Vec (Get a 0) (* (Get a 1) (Get a 2)) (Get a "
                    "3) (sqrt (Get a 3))))"),
        k, 4, {{"a", {1, 2, 3, 4}}});
    EXPECT_EQ(out, (std::vector<float>{1, 6, 4, 2}));
}

TEST(LowerTerm, VectorArithmetic)
{
    const scalar::Kernel k = io_kernel({{"a", 4}, {"b", 4}}, 4);
    const auto out = run_term(
        Term::parse("(List (VecMAC (Vec (Get a 0) (Get a 1) (Get a 2) "
                    "(Get a 3)) (Vec (Get b 0) (Get b 1) (Get b 2) (Get b "
                    "3)) (Vec 2 2 2 2)))"),
        k, 4, {{"a", {1, 2, 3, 4}}, {"b", {10, 20, 30, 40}}});
    EXPECT_EQ(out, (std::vector<float>{21, 42, 63, 84}));
}

TEST(LowerTerm, ScalarListWithSharedSubterms)
{
    const scalar::Kernel k = io_kernel({{"a", 4}}, 3);
    RunResult stats;
    // (a0*a1) appears three times; memoized lowering + LVN must compute
    // it once.
    const auto out = run_term(
        Term::parse("(List (* (Get a 0) (Get a 1)) (+ (* (Get a 0) (Get a "
                    "1)) 1) (* (* (Get a 0) (Get a 1)) 2) 0)"),
        k, 3, {{"a", {3, 4, 0, 0}}}, 4, &stats);
    EXPECT_EQ(out, (std::vector<float>{12, 13, 24}));
    EXPECT_EQ(stats.count(Opcode::kFMul), 2u);  // a0*a1 and (a0*a1)*2
}

TEST(LowerTerm, MultipleOutputSlotsNeverStraddle)
{
    scalar::KernelBuilder kb("two-out");
    kb.input("a", scalar::IntExpr::constant(4));
    kb.output("x", scalar::IntExpr::constant(3));
    kb.output("y", scalar::IntExpr::constant(2));
    kb.append(scalar::st_store("x", scalar::IntExpr::constant(0),
                               scalar::f_const(0)));
    const scalar::Kernel k = kb.build();

    // Padded layout: x occupies 4 slots (3 real), y occupies 4 (2 real).
    std::vector<OutputSlot> slots{{"x", 3, 4}, {"y", 2, 4}};
    VProgram vp = lower_term(
        Term::parse("(List (Vec (Get a 0) (Get a 1) (Get a 2) 0) (Vec "
                    "(Get a 3) (Get a 0) 0 0))"),
        4, slots);
    run_lvn(vp);
    CompiledLayout layout = CompiledLayout::make(k, 4);
    const Program prog =
        emit_machine(vp, layout, TargetSpec::fusion_g3_like());
    Memory mem = layout.make_memory({{"a", {1, 2, 3, 4}}});
    Simulator sim(TargetSpec::fusion_g3_like());
    sim.run(prog, mem);
    const auto outs = layout.read_outputs(mem);
    EXPECT_EQ(outs.at("x"), (std::vector<float>{1, 2, 3}));
    EXPECT_EQ(outs.at("y"), (std::vector<float>{4, 1}));
}

TEST(Validate, LoweredProgramIsWellFormed)
{
    std::vector<OutputSlot> slots{{"out", 4, 4}};
    VProgram vp = lower_term(
        Term::parse("(List (Vec (Get a 6) (Get a 1) (* (Get a 2) (Get a "
                    "0)) 7))"),
        4, slots);
    EXPECT_EQ(vp.validate(), "");
    run_lvn(vp);
    EXPECT_EQ(vp.validate(), "");
}

TEST(Validate, ReportsTheFirstViolation)
{
    VProgram vp;
    vp.vector_width = 4;
    const int s0 = vp.fresh_scalar();
    const int s1 = vp.fresh_scalar();
    VInstr add{.op = VOp::kSBinary, .alu = Op::kAdd, .dst = s1, .a = s0,
               .b = s0};
    vp.instrs.push_back(add);  // s0 never defined
    const std::string msg = vp.validate();
    EXPECT_NE(msg, "");
    EXPECT_NE(msg.find("instr 0"), std::string::npos) << msg;

    VProgram shuf;
    shuf.vector_width = 4;
    const int v0 = shuf.fresh_vector();
    const int v1 = shuf.fresh_vector();
    VInstr vc{.op = VOp::kVConst, .dst = v0};
    vc.values = {1, 2, 3, 4};
    shuf.instrs.push_back(vc);
    VInstr sh{.op = VOp::kShuffle, .dst = v1, .a = v0};
    sh.lanes = {9, 0, 0, 0};
    shuf.instrs.push_back(sh);
    EXPECT_NE(shuf.validate(), "");

    VProgram neg;
    neg.vector_width = 4;
    const int s = neg.fresh_scalar();
    VInstr ld{.op = VOp::kSLoad, .dst = s};
    ld.array = Symbol("a");
    ld.offset = -2;
    neg.instrs.push_back(ld);
    EXPECT_NE(neg.validate(), "");
}

TEST(Lvn, RemovesRedundantAndDeadInstructions)
{
    VProgram vp;
    vp.vector_width = 4;
    const int s0 = vp.fresh_scalar();
    const int s1 = vp.fresh_scalar();
    const int s2 = vp.fresh_scalar();
    const int s3 = vp.fresh_scalar();
    const int dead = vp.fresh_scalar();
    auto load = [&](int dst) {
        VInstr i{.op = VOp::kSLoad, .dst = dst};
        i.array = Symbol("a");
        i.offset = 0;
        return i;
    };
    vp.instrs.push_back(load(s0));
    vp.instrs.push_back(load(s1));  // duplicate of s0
    vp.instrs.push_back(
        {.op = VOp::kSBinary, .alu = Op::kAdd, .dst = s2, .a = s0, .b = s1});
    vp.instrs.push_back(
        {.op = VOp::kSBinary, .alu = Op::kAdd, .dst = s3, .a = s0, .b = s0});
    vp.instrs.push_back(
        {.op = VOp::kSUnary, .alu = Op::kNeg, .dst = dead, .a = s3});
    {
        VInstr st{.op = VOp::kSStore, .a = s2};
        st.array = Symbol("out");
        st.offset = 0;
        vp.instrs.push_back(st);
    }

    const LvnStats stats = run_lvn(vp);
    // s1 numbers to s0; then s3's add equals s2's (s0+s0 after renaming);
    // the neg of the dead value disappears.
    EXPECT_EQ(stats.value_numbered, 2u);
    EXPECT_EQ(stats.dead_removed, 1u);
    EXPECT_EQ(vp.instrs.size(), 3u);
}

TEST(Lvn, IsIdempotent)
{
    VProgram vp;
    vp.vector_width = 4;
    const int s0 = vp.fresh_scalar();
    VInstr i{.op = VOp::kSLoad, .dst = s0};
    i.array = Symbol("a");
    vp.instrs.push_back(i);
    VInstr st{.op = VOp::kSStore, .a = s0};
    st.array = Symbol("out");
    vp.instrs.push_back(st);
    run_lvn(vp);
    const std::size_t after_first = vp.instrs.size();
    const LvnStats second = run_lvn(vp);
    EXPECT_EQ(vp.instrs.size(), after_first);
    EXPECT_EQ(second.value_numbered, 0u);
    EXPECT_EQ(second.dead_removed, 0u);
}

TEST(Emit, MacReusesAccumulatorRegisterInPlace)
{
    // acc chain: the VMac should lower to exactly one vmac, no copies.
    const scalar::Kernel k = io_kernel({{"a", 4}, {"b", 4}}, 4);
    RunResult stats;
    run_term(Term::parse("(List (VecMAC (Vec (Get a 0) (Get a 1) (Get a "
                         "2) (Get a 3)) (Vec (Get b 0) (Get b 1) (Get b "
                         "2) (Get b 3)) (Vec (Get b 0) (Get b 1) (Get b "
                         "2) (Get b 3))))"),
             k, 4, {{"a", {1, 1, 1, 1}}, {"b", {2, 3, 4, 5}}}, 4, &stats);
    EXPECT_EQ(stats.count(Opcode::kVMac), 1u);
    // Two loads + one mac + one store; no shuffle copy needed.
    EXPECT_EQ(stats.count(Opcode::kShuf), 0u);
}

TEST(Emit, UniformConstantVectorUsesSplat)
{
    const scalar::Kernel k = io_kernel({{"a", 4}}, 4);
    RunResult stats;
    const auto out = run_term(
        Term::parse("(List (VecMul (Vec (Get a 0) (Get a 1) (Get a 2) "
                    "(Get a 3)) (Vec 3 3 3 3)))"),
        k, 4, {{"a", {1, 2, 3, 4}}}, 4, &stats);
    EXPECT_EQ(out, (std::vector<float>{3, 6, 9, 12}));
    EXPECT_EQ(stats.count(Opcode::kVSplat), 1u);
}

TEST(Emit, RejectsUserCalls)
{
    const scalar::Kernel k = io_kernel({{"a", 4}}, 1);
    EXPECT_THROW(run_term(Term::parse("(List (Call f (Get a 0)))"), k, 1,
                          {{"a", {1, 2, 3, 4}}}),
                 UserError);
}

TEST(CPrint, EmitsIntrinsicSource)
{
    std::vector<OutputSlot> slots{{"out", 4, 4}};
    VProgram vp = lower_term(
        Term::parse("(List (VecMAC (Vec (Get o 0) (Get o 1) (Get o 2) "
                    "(Get o 3)) (Vec (Get i 2) (Get i 1) (Get i 0) (Get i "
                    "3)) (Vec 0 1 2 3)))"),
        4, slots);
    run_lvn(vp);
    const std::string src = to_c_intrinsics(vp, "demo_kernel");
    EXPECT_NE(src.find("void demo_kernel("), std::string::npos);
    EXPECT_NE(src.find("PDX_LV_MX32"), std::string::npos);
    EXPECT_NE(src.find("PDX_SHFL_MX32"), std::string::npos);
    EXPECT_NE(src.find("PDX_MAC_MX32"), std::string::npos);
    EXPECT_NE(src.find("PDX_SV_MX32"), std::string::npos);
}

TEST(LowerTerm, RandomizedGathersMatchReference)
{
    // Property: random Vec gather patterns over two arrays execute to
    // exactly the values the reference evaluator predicts.
    Rng rng(404);
    const scalar::Kernel k = io_kernel({{"a", 12}, {"b", 8}}, 4);
    scalar::BufferMap inputs;
    std::vector<float> a(12), b(8);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<float>(100 + i);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = static_cast<float>(200 + i);
    }
    inputs = {{"a", a}, {"b", b}};

    for (int trial = 0; trial < 40; ++trial) {
        std::vector<TermRef> lanes;
        for (int l = 0; l < 4; ++l) {
            switch (rng.uniform_int(0, 3)) {
              case 0:
                lanes.push_back(t_get("a", rng.uniform_int(0, 11)));
                break;
              case 1:
                lanes.push_back(t_get("b", rng.uniform_int(0, 7)));
                break;
              case 2:
                lanes.push_back(t_const(rng.uniform_int(-3, 3)));
                break;
              default:
                lanes.push_back(t_mul(t_get("a", rng.uniform_int(0, 11)),
                                      t_get("b", rng.uniform_int(0, 7))));
                break;
            }
        }
        const TermRef term = t_list({t_vec(lanes)});
        const auto out = run_term(term, k, 4, inputs);

        EvalEnv env;
        env.bind_array("a", std::vector<double>(a.begin(), a.end()));
        env.bind_array("b", std::vector<double>(b.begin(), b.end()));
        const auto expected = evaluate(term, env);
        for (int l = 0; l < 4; ++l) {
            EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(l)],
                            static_cast<float>(
                                expected[static_cast<std::size_t>(l)]))
                << "trial " << trial << " lane " << l << "\nterm: "
                << Term::to_string(term);
        }
    }
}

}  // namespace
}  // namespace diospyros::vir
