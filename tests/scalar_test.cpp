// Tests for the scalar input language: AST construction, the reference
// interpreter, symbolic lifting, and both baseline lowerings.

#include <gtest/gtest.h>

#include "ir/eval.h"
#include "machine/sim.h"
#include "scalar/ast.h"
#include "scalar/interp.h"
#include "scalar/lower.h"
#include "scalar/symbolic.h"
#include "support/rng.h"

namespace diospyros::scalar {
namespace {

/** The paper §3.1 example: C[i] = A[i] + B[i]. */
Kernel
vector_add_kernel(std::int64_t n)
{
    KernelBuilder kb("vector-add");
    const IntRef size = kb.param("n", n);
    kb.input("A", size);
    kb.input("B", size);
    kb.output("C", size);
    const IntRef i = KernelBuilder::var("i");
    kb.append(st_for(
        "i", IntExpr::constant(0), size,
        {st_store("C", i,
                  KernelBuilder::load("A", i) + KernelBuilder::load("B", i))}));
    return kb.build();
}

/** A 2x2 matrix multiply with accumulation, exercising nested loops. */
Kernel
matmul2_kernel()
{
    KernelBuilder kb("matmul2");
    const IntRef n = kb.param("n", 2);
    kb.input("A", n * n);
    kb.input("B", n * n);
    kb.output("C", n * n);
    const IntRef i = KernelBuilder::var("i");
    const IntRef j = KernelBuilder::var("j");
    const IntRef k = KernelBuilder::var("k");
    kb.append(st_for(
        "i", IntExpr::constant(0), n,
        {st_for(
            "j", IntExpr::constant(0), n,
            {st_for("k", IntExpr::constant(0), n,
                    {st_accumulate("C", i * n + j,
                                   KernelBuilder::load("A", i * n + k) *
                                       KernelBuilder::load("B", k * n + j))})})}));
    return kb.build();
}

/** Kernel with a boundary-condition if, like the paper's 2D convolution. */
Kernel
guarded_kernel()
{
    // o[i] = (i-1 >= 0) ? a[i-1] : 0, for i in [0, 4)
    KernelBuilder kb("guarded");
    const IntRef n = kb.param("n", 4);
    kb.input("a", n);
    kb.output("o", n);
    const IntRef i = KernelBuilder::var("i");
    kb.append(st_for("i", IntExpr::constant(0), n,
                     {st_if(i - 1 >= IntExpr::constant(0),
                            {st_store("o", i,
                                      KernelBuilder::load("a", i - 1))})}));
    return kb.build();
}

TEST(PseudoC, RendersKernel)
{
    const std::string text = to_pseudo_c(matmul2_kernel());
    EXPECT_NE(text.find("for (k = 0; k < n; k++)"), std::string::npos);
    EXPECT_NE(text.find("#define n 2"), std::string::npos);
}

TEST(Interp, VectorAdd)
{
    const Kernel k = vector_add_kernel(4);
    const BufferMap out = run_reference(
        k, {{"A", {1, 2, 3, 4}}, {"B", {10, 20, 30, 40}}});
    EXPECT_EQ(out.at("C"), (std::vector<float>{11, 22, 33, 44}));
}

TEST(Interp, MatMul2)
{
    const BufferMap out = run_reference(
        matmul2_kernel(), {{"A", {1, 2, 3, 4}}, {"B", {5, 6, 7, 8}}});
    EXPECT_EQ(out.at("C"), (std::vector<float>{19, 22, 43, 50}));
}

TEST(Interp, GuardedBoundary)
{
    const BufferMap out =
        run_reference(guarded_kernel(), {{"a", {1, 2, 3, 4}}});
    EXPECT_EQ(out.at("o"), (std::vector<float>{0, 1, 2, 3}));
}

TEST(Interp, ChecksInputSizes)
{
    EXPECT_THROW(run_reference(vector_add_kernel(4), {{"A", {1, 2, 3, 4}}}),
                 UserError);
    EXPECT_THROW(
        run_reference(vector_add_kernel(4),
                      {{"A", {1, 2}}, {"B", {1, 2, 3, 4}}}),
        UserError);
}

TEST(Lift, VectorAddSpec)
{
    const LiftedSpec spec = lift(vector_add_kernel(2));
    EXPECT_EQ(Term::to_string(spec.spec),
              "(List (+ (Get A 0) (Get B 0)) (+ (Get A 1) (Get B 1)))");
    EXPECT_EQ(spec.total_outputs, 2);
    ASSERT_EQ(spec.outputs.size(), 1u);
    EXPECT_EQ(spec.outputs[0].first, "C");
}

TEST(Lift, GuardedSpecSimplifiesZeros)
{
    const LiftedSpec spec = lift(guarded_kernel());
    // First output stays the initial 0; others are plain Gets.
    EXPECT_EQ(Term::to_string(spec.spec),
              "(List 0 (Get a 0) (Get a 1) (Get a 2))");
}

TEST(Lift, AccumulationUnrollsToSumTree)
{
    const LiftedSpec spec = lift(matmul2_kernel());
    // c00 = a00*b00 + a01*b10; the initial zero must be simplified away.
    const TermRef first = spec.spec->child(0);
    EXPECT_EQ(Term::to_string(first),
              "(+ (* (Get A 0) (Get B 0)) (* (Get A 1) (Get B 2)))");
}

TEST(Lift, SpecMatchesInterpreterSemantics)
{
    // Property: evaluating the lifted spec equals running the kernel.
    Rng rng(5);
    const Kernel k = matmul2_kernel();
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<float> a(4), b(4);
        for (auto& v : a) {
            v = rng.uniform_float(-3, 3);
        }
        for (auto& v : b) {
            v = rng.uniform_float(-3, 3);
        }
        const BufferMap ref = run_reference(k, {{"A", a}, {"B", b}});
        const LiftedSpec spec = lift(k);
        EvalEnv env;
        env.bind_array("A", std::vector<double>(a.begin(), a.end()));
        env.bind_array("B", std::vector<double>(b.begin(), b.end()));
        const std::vector<double> values = evaluate(spec.spec, env);
        ASSERT_EQ(values.size(), 4u);
        for (int i = 0; i < 4; ++i) {
            EXPECT_NEAR(values[static_cast<std::size_t>(i)],
                        ref.at("C")[static_cast<std::size_t>(i)], 1e-4);
        }
    }
}

TEST(Simplify, SmartConstructors)
{
    const TermRef x = t_get("a", 0);
    EXPECT_EQ(Term::to_string(s_add(x, t_const(0))), "(Get a 0)");
    EXPECT_EQ(Term::to_string(s_mul(x, t_const(0))), "0");
    EXPECT_EQ(Term::to_string(s_mul(t_const(1), x)), "(Get a 0)");
    EXPECT_EQ(Term::to_string(s_sub(x, t_const(0))), "(Get a 0)");
    EXPECT_EQ(Term::to_string(s_neg(s_neg(x))), "(Get a 0)");
    EXPECT_EQ(Term::to_string(s_add(t_const(2), t_const(3))), "5");
    EXPECT_EQ(Term::to_string(s_div(t_const(1), t_const(2))), "1/2");
    EXPECT_EQ(Term::to_string(s_sgn(t_const(-7))), "-1");
}

class LoweringTest : public ::testing::TestWithParam<LowerMode> {
  protected:
    TargetSpec spec_ = TargetSpec::fusion_g3_like();
};

TEST_P(LoweringTest, VectorAddMatchesReference)
{
    const Kernel k = vector_add_kernel(5);
    const BufferMap inputs = {{"A", {1, 2, 3, 4, 5}},
                              {"B", {6, 7, 8, 9, 10}}};
    const BaselineRun run = run_baseline(k, inputs, GetParam(), spec_);
    EXPECT_EQ(run.outputs.at("C"),
              run_reference(k, inputs).at("C"));
}

TEST_P(LoweringTest, MatMulMatchesReference)
{
    const Kernel k = matmul2_kernel();
    const BufferMap inputs = {{"A", {1, 2, 3, 4}}, {"B", {5, 6, 7, 8}}};
    const BaselineRun run = run_baseline(k, inputs, GetParam(), spec_);
    EXPECT_EQ(run.outputs.at("C"),
              run_reference(k, inputs).at("C"));
}

TEST_P(LoweringTest, GuardedMatchesReference)
{
    const Kernel k = guarded_kernel();
    const BufferMap inputs = {{"a", {4, 3, 2, 1}}};
    const BaselineRun run = run_baseline(k, inputs, GetParam(), spec_);
    EXPECT_EQ(run.outputs.at("o"),
              run_reference(k, inputs).at("o"));
}

TEST_P(LoweringTest, RandomizedKernelsMatchReference)
{
    Rng rng(31);
    const Kernel k = matmul2_kernel();
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<float> a(4), b(4);
        for (auto& v : a) {
            v = rng.uniform_float(-2, 2);
        }
        for (auto& v : b) {
            v = rng.uniform_float(-2, 2);
        }
        const BufferMap inputs = {{"A", a}, {"B", b}};
        const BaselineRun run = run_baseline(k, inputs, GetParam(), spec_);
        const BufferMap ref = run_reference(k, inputs);
        for (int i = 0; i < 4; ++i) {
            EXPECT_FLOAT_EQ(run.outputs.at("C")[static_cast<std::size_t>(i)],
                            ref.at("C")[static_cast<std::size_t>(i)]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, LoweringTest,
                         ::testing::Values(LowerMode::kNaiveParametric,
                                           LowerMode::kNaiveFixed),
                         [](const auto& info) {
                             return info.param ==
                                            LowerMode::kNaiveParametric
                                        ? "NaiveParametric"
                                        : "NaiveFixed";
                         });

TEST(LoweringCost, FixedSizeIsFasterThanParametric)
{
    // The paper reports ~1.6x from fixing sizes on 2DConv-like kernels;
    // our model must reproduce the direction of that gap.
    const TargetSpec spec = TargetSpec::fusion_g3_like();
    const Kernel k = matmul2_kernel();
    const BufferMap inputs = {{"A", {1, 2, 3, 4}}, {"B", {5, 6, 7, 8}}};
    const BaselineRun naive =
        run_baseline(k, inputs, LowerMode::kNaiveParametric, spec);
    const BaselineRun fixed =
        run_baseline(k, inputs, LowerMode::kNaiveFixed, spec);
    EXPECT_LT(fixed.result.cycles, naive.result.cycles);
}

TEST(LoweringCost, FixedSizePromotesAccumulators)
{
    // With store-forwarding, the 2x2 matmul should need exactly one store
    // per output element.
    const TargetSpec spec = TargetSpec::fusion_g3_like();
    const BaselineRun fixed = run_baseline(
        matmul2_kernel(), {{"A", {1, 2, 3, 4}}, {"B", {5, 6, 7, 8}}},
        LowerMode::kNaiveFixed, spec);
    EXPECT_EQ(fixed.result.count(Opcode::kFStore), 4u);
    // The G3-like target has no scalar fused MAC, so each accumulation is
    // a multiply plus an add into the promoted register.
    EXPECT_EQ(fixed.result.count(Opcode::kFMac), 0u);
    EXPECT_GE(fixed.result.count(Opcode::kFMul), 8u);
    EXPECT_GE(fixed.result.count(Opcode::kFAdd), 4u);
}

}  // namespace
}  // namespace diospyros::scalar
