// Tests for the saturation strategy subsystem (src/strategy/):
// schedulers, the sketch goal language, the phase engine, the DSL
// round-trip, and the pinned guarantee that the built-in "default"
// strategy reproduces the legacy monolithic Runner::run byte for byte.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/audit_egraph.h"
#include "analysis/diagnostics.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "ir/term.h"
#include "rules/cost.h"
#include "rules/rules.h"
#include "strategy/parse.h"
#include "strategy/scheduler.h"
#include "strategy/sketch.h"
#include "strategy/strategy.h"
#include "support/error.h"

namespace diospyros {
namespace {

using strategy::BackoffScheduler;
using strategy::MatchCapScheduler;
using strategy::Phase;
using strategy::PhaseReport;
using strategy::Sketch;
using strategy::Strategy;
using strategy::StrategyReport;
using strategy::StrategyRunOptions;

// A 4-lane accumulate spec that vectorizes to a single VecMAC.
const char* kMacSpec =
    "(List (+ (Get o 0) (* (Get i 0) (Get f 0))) "
    "(+ (Get o 1) (* (Get i 1) (Get f 1))) "
    "(+ (Get o 2) (* (Get i 2) (Get f 2))) "
    "(+ (Get o 3) (* (Get i 3) (Get f 3))))";

// A 4-lane elementwise add.
const char* kVaddSpec =
    "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) "
    "(+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))";

RunnerLimits
small_limits()
{
    return RunnerLimits{.node_limit = 200'000,
                        .iter_limit = 12,
                        .time_limit_seconds = 20.0};
}

struct Prepared {
    EGraph graph;
    ClassId root;
};

Prepared
prepare(const std::string& spec)
{
    Prepared p;
    p.root = p.graph.add_term(Term::parse(spec));
    p.graph.rebuild();
    return p;
}

std::string
extract_text(EGraph& graph, ClassId root, int width = 4)
{
    const DiosCostModel cost({}, width);
    const Extractor ex(graph, cost);
    return Term::to_string(ex.extract(graph.find(root)).term);
}

// ---------------------------------------------------------------------
// Schedulers.

TEST(BackoffSchedulerTest, BansGeometricallyAboveThreshold)
{
    BackoffScheduler sched(/*threshold=*/4);
    sched.begin(2);
    EXPECT_TRUE(sched.allow(0, 0));
    // 10 matches > threshold 4: truncated to 4 and banned.
    EXPECT_EQ(sched.admit(0, 0, 10), 4u);
    EXPECT_EQ(sched.times_banned(0), 1);
    // Ban window: iter + 1 + 2^min(bans,10) = 0 + 1 + 2 = 3.
    EXPECT_EQ(sched.banned_until(0), 3);
    EXPECT_FALSE(sched.allow(0, 1));
    EXPECT_FALSE(sched.allow(0, 2));
    EXPECT_TRUE(sched.allow(0, 3));
    // Second offense doubles the window: 3 + 1 + 4 = 8.
    EXPECT_EQ(sched.admit(0, 3, 100), 4u);
    EXPECT_EQ(sched.banned_until(0), 8);
    // Rule 1 is untouched.
    EXPECT_TRUE(sched.allow(1, 1));
    EXPECT_EQ(sched.admit(1, 1, 3), 3u);
    EXPECT_EQ(sched.times_banned(1), 0);
    // begin() resets everything.
    sched.begin(2);
    EXPECT_TRUE(sched.allow(0, 0));
    EXPECT_EQ(sched.times_banned(0), 0);
}

TEST(BackoffSchedulerTest, ZeroThresholdNeverBansAndCapApplies)
{
    BackoffScheduler sched(/*threshold=*/0, /*match_cap=*/5);
    sched.begin(1);
    EXPECT_TRUE(sched.allow(0, 0));
    EXPECT_EQ(sched.admit(0, 0, 1000), 5u);
    EXPECT_EQ(sched.times_banned(0), 0);
    EXPECT_TRUE(sched.allow(0, 1));
}

TEST(MatchCapSchedulerTest, CapsButNeverBans)
{
    MatchCapScheduler sched(3);
    sched.begin(1);
    EXPECT_TRUE(sched.allow(0, 0));
    EXPECT_EQ(sched.admit(0, 0, 10), 3u);
    EXPECT_EQ(sched.admit(0, 0, 2), 2u);
    EXPECT_TRUE(sched.allow(0, 99));
    EXPECT_EQ(sched.times_banned(0), 0);
}

// ---------------------------------------------------------------------
// Sketches.

TEST(SketchTest, ContainsVecMacAfterSaturationOnly)
{
    Prepared p = prepare(kMacSpec);
    const Sketch goal = Sketch::contains(Sketch::of_op(Op::kVecMAC));
    EXPECT_TRUE(strategy::sketch_satisfied(p.graph, p.root, Sketch::any()));
    EXPECT_FALSE(strategy::sketch_satisfied(p.graph, p.root, goal));

    Runner runner(small_limits());
    runner.run(p.graph, build_rules(RuleConfig(4)));
    EXPECT_TRUE(strategy::sketch_satisfied(p.graph, p.root, goal));
    // The lanes are MACs, so no VecSqrt exists anywhere in the graph.
    EXPECT_FALSE(strategy::sketch_satisfied(
        p.graph, p.root,
        Sketch::contains(Sketch::of_op(Op::kVecSqrt))));
}

TEST(SketchTest, OpChildrenAreChecked)
{
    Prepared p = prepare("(+ (Get a 0) (* (Get b 0) (Get c 0)))");
    // (op + (any) (op * ...)) matches the spec shape.
    const Sketch match = Sketch::of_op(
        Op::kAdd, {Sketch::any(), Sketch::of_op(Op::kMul)});
    const Sketch mismatch = Sketch::of_op(
        Op::kAdd, {Sketch::of_op(Op::kMul), Sketch::of_op(Op::kMul)});
    EXPECT_TRUE(strategy::sketch_satisfied(p.graph, p.root, match));
    EXPECT_FALSE(strategy::sketch_satisfied(p.graph, p.root, mismatch));
}

TEST(SketchTest, VecOfTokenLifting)
{
    Op op = Op::kConst;
    ASSERT_TRUE(strategy::op_from_token("+", /*vec=*/true, op));
    EXPECT_EQ(op, Op::kVecAdd);
    ASSERT_TRUE(strategy::op_from_token("mac", /*vec=*/true, op));
    EXPECT_EQ(op, Op::kVecMAC);
    ASSERT_TRUE(strategy::op_from_token("VecMul", /*vec=*/false, op));
    EXPECT_EQ(op, Op::kVecMul);
    EXPECT_FALSE(strategy::op_from_token("frobnicate", /*vec=*/true, op));
}

// ---------------------------------------------------------------------
// DSL round-trip and diagnostics.

TEST(StrategyDslTest, BuiltinsRoundTripThroughCanonicalText)
{
    for (const std::string& name : strategy::builtin_strategy_names()) {
        const auto built = strategy::builtin_strategy(name);
        ASSERT_TRUE(built.has_value()) << name;
        analysis::DiagEngine diags;
        const auto reparsed =
            strategy::parse_strategy(built->to_string(), diags);
        EXPECT_FALSE(diags.has_errors()) << diags.render_text();
        ASSERT_TRUE(reparsed.has_value()) << name;
        EXPECT_EQ(*reparsed, *built) << name;
        // Canonical text is a fixed point.
        EXPECT_EQ(reparsed->to_string(), built->to_string()) << name;
    }
}

TEST(StrategyDslTest, EveryClauseRoundTrips)
{
    Strategy s;
    s.name = "kitchen-sink";
    Phase a;
    a.name = "grow";
    a.rules = {"vec-*", "list-chunk"};
    a.limits.iter_limit = 5;
    a.limits.node_limit = 1000;
    a.limits.time_limit_seconds = 2.5;
    a.limits.memory_limit_bytes = 1 << 20;
    a.scheduler.kind = strategy::SchedulerSpec::Kind::kBackoff;
    a.scheduler.threshold = 64;
    a.scheduler.match_cap = 128;
    a.until = Sketch::contains(Sketch::of_op(Op::kVecMAC));
    a.repeat = 3;
    s.phases.push_back(a);
    Phase b;
    b.name = "clean";
    b.rules = {"all"};
    b.scheduler.kind = strategy::SchedulerSpec::Kind::kMatchCap;
    b.scheduler.match_cap = 9;
    b.always = true;
    s.phases.push_back(b);
    Phase c;
    c.name = "open";
    c.rules = {"mul-1"};
    c.scheduler.kind = strategy::SchedulerSpec::Kind::kNone;
    s.phases.push_back(c);
    s.goal = Sketch::contains(
        Sketch::of_op(Op::kVecAdd, {Sketch::any(), Sketch::any()}));

    analysis::DiagEngine diags;
    const auto reparsed = strategy::parse_strategy(s.to_string(), diags);
    ASSERT_FALSE(diags.has_errors()) << diags.render_text();
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, s);
}

TEST(StrategyDslTest, MalformedInputsGetStableCodes)
{
    const struct {
        const char* text;
        const char* code;
    } cases[] = {
        {"(((", "S400"},
        {"(bogus)", "S400"},
        {"(strategy s)", "S400"},
        {"(strategy s (wat))", "S400"},
        {"(strategy s (goal (any)))", "S400"},  // no phases
        {"(strategy s (phase p (rules all)) (goal (any)) (goal (any)))",
         "S400"},
        {"(strategy s (phase p))", "S401"},
        {"(strategy s (phase p (iters 3)))", "S401"},  // no rules clause
        {"(strategy s (phase p (rules all) (wat 1)))", "S402"},
        {"(strategy s (phase p (rules all) (always 1)))", "S402"},
        {"(strategy s (phase p (rules all) (iters -1)))", "S403"},
        {"(strategy s (phase p (rules all) (repeat 0)))", "S403"},
        {"(strategy s (phase p (rules all) (timeout x)))", "S403"},
        {"(strategy s (phase p (rules all) (scheduler wat)))", "S405"},
        {"(strategy s (phase p (rules all) (scheduler match-cap 0)))",
         "S405"},
        {"(strategy s (phase p (rules all)) (goal (frob)))", "S406"},
        {"(strategy s (phase p (rules all)) (goal (op nosuchop)))", "S406"},
    };
    for (const auto& c : cases) {
        analysis::DiagEngine diags;
        const auto parsed = strategy::parse_strategy(c.text, diags);
        EXPECT_FALSE(parsed.has_value()) << c.text;
        EXPECT_TRUE(diags.has_errors()) << c.text;
        EXPECT_TRUE(diags.has_code(c.code))
            << c.text << "\n" << diags.render_text();
    }
}

TEST(StrategyDslTest, LoadStrategyResolvesBuiltinsAndReportsBadPaths)
{
    analysis::DiagEngine diags;
    const auto phased = strategy::load_strategy("phased", diags);
    ASSERT_TRUE(phased.has_value());
    EXPECT_FALSE(diags.has_errors());
    EXPECT_EQ(*phased, strategy::builtin_phased());

    const auto missing =
        strategy::load_strategy("/no/such/file.strat", diags);
    EXPECT_FALSE(missing.has_value());
    EXPECT_TRUE(diags.has_code("S409"));
}

// ---------------------------------------------------------------------
// Rule resolution.

TEST(StrategyResolveTest, GlobsExactNamesAndAll)
{
    const std::vector<Rewrite> rules = build_rules(RuleConfig(4));
    analysis::DiagEngine diags;

    Strategy s;
    s.name = "t";
    Phase p;
    p.name = "p";
    p.rules = {"list-chunk", "*-lift", "all"};
    s.phases.push_back(p);

    const auto resolved = strategy::resolve_phase_rules(s, rules, diags);
    ASSERT_FALSE(diags.has_errors()) << diags.render_text();
    ASSERT_EQ(resolved.size(), 1u);
    // "all" subsumes everything; indices are deduplicated.
    EXPECT_EQ(resolved[0].size(), rules.size());
}

TEST(StrategyResolveTest, UnknownReferenceIsS404)
{
    const std::vector<Rewrite> rules = build_rules(RuleConfig(4));
    analysis::DiagEngine diags;
    Strategy s;
    s.name = "t";
    Phase p;
    p.name = "p";
    p.rules = {"no-such-rule"};
    s.phases.push_back(p);
    strategy::resolve_phase_rules(s, rules, diags);
    EXPECT_TRUE(diags.has_code("S404")) << diags.render_text();

    // And run_strategy surfaces it as a UserError.
    Prepared g = prepare(kVaddSpec);
    StrategyRunOptions options;
    options.base = small_limits();
    EXPECT_THROW(
        strategy::run_strategy(g.graph, g.root, rules, s, options),
        UserError);
}

// ---------------------------------------------------------------------
// Engine behavior.

TEST(StrategyRunTest, DefaultStrategyMatchesLegacyRunnerExactly)
{
    for (const char* spec : {kVaddSpec, kMacSpec}) {
        const std::vector<Rewrite> rules = build_rules(RuleConfig(4));

        Prepared legacy = prepare(spec);
        Runner runner(small_limits());
        const RunnerReport lr = runner.run(legacy.graph, rules);

        Prepared strat = prepare(spec);
        StrategyRunOptions options;
        options.base = small_limits();
        const StrategyReport sr = strategy::run_strategy(
            strat.graph, strat.root, rules, strategy::builtin_default(),
            options);

        EXPECT_EQ(sr.stop_reason, lr.stop_reason);
        EXPECT_EQ(sr.iterations, lr.iterations.size());
        EXPECT_EQ(sr.final_nodes, lr.final_nodes);
        EXPECT_EQ(sr.final_classes, lr.final_classes);
        ASSERT_EQ(sr.rule_stats.size(), lr.rule_stats.size());
        for (std::size_t i = 0; i < lr.rule_stats.size(); ++i) {
            EXPECT_EQ(sr.rule_stats[i].name, lr.rule_stats[i].name);
            EXPECT_EQ(sr.rule_stats[i].matches, lr.rule_stats[i].matches)
                << lr.rule_stats[i].name;
            EXPECT_EQ(sr.rule_stats[i].applications,
                      lr.rule_stats[i].applications)
                << lr.rule_stats[i].name;
            EXPECT_EQ(sr.rule_stats[i].times_banned,
                      lr.rule_stats[i].times_banned)
                << lr.rule_stats[i].name;
            EXPECT_EQ(sr.rule_stats[i].banned_until,
                      lr.rule_stats[i].banned_until)
                << lr.rule_stats[i].name;
        }
        EXPECT_EQ(extract_text(strat.graph, strat.root),
                  extract_text(legacy.graph, legacy.root));
    }
}

TEST(StrategyRunTest, PhasedIsDeterministic)
{
    auto run_once = [](StrategyReport& out, std::string& extracted) {
        Prepared p = prepare(kMacSpec);
        StrategyRunOptions options;
        options.base = small_limits();
        out = strategy::run_strategy(p.graph, p.root, build_rules(RuleConfig(4)),
                                     strategy::builtin_phased(), options);
        extracted = extract_text(p.graph, p.root);
    };
    StrategyReport a, b;
    std::string ea, eb;
    run_once(a, ea);
    run_once(b, eb);
    EXPECT_EQ(a.stop_reason, b.stop_reason);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.final_nodes, b.final_nodes);
    EXPECT_EQ(a.final_classes, b.final_classes);
    EXPECT_EQ(a.goal_satisfied, b.goal_satisfied);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].runs, b.phases[i].runs);
        EXPECT_EQ(a.phases[i].skipped, b.phases[i].skipped);
    }
    ASSERT_EQ(a.rule_stats.size(), b.rule_stats.size());
    for (std::size_t i = 0; i < a.rule_stats.size(); ++i) {
        EXPECT_EQ(a.rule_stats[i].matches, b.rule_stats[i].matches);
        EXPECT_EQ(a.rule_stats[i].applications,
                  b.rule_stats[i].applications);
    }
    EXPECT_EQ(ea, eb);
}

TEST(StrategyRunTest, PhaseHandoffLeavesInvariantsClean)
{
    Prepared p = prepare(kMacSpec);
    StrategyRunOptions options;
    options.base = small_limits();
    int executed = 0;
    options.on_phase_end = [&](const EGraph& graph,
                               const PhaseReport& phase) {
        ++executed;
        EXPECT_GT(phase.runs, 0) << phase.name;
        EXPECT_NO_THROW(graph.check_invariants()) << phase.name;
        // The E1xx structural auditor must come back clean after every
        // phase: each handoff leaves a canonical, rebuilt graph.
        analysis::DiagEngine diags;
        EXPECT_TRUE(analysis::audit_egraph(graph, diags))
            << phase.name << "\n" << diags.render_text();
    };
    const StrategyReport report = strategy::run_strategy(
        p.graph, p.root, build_rules(RuleConfig(4)), strategy::builtin_phased(),
        options);
    // Several phases executed, each leaving a clean, canonical graph.
    EXPECT_GT(executed, 1);
    EXPECT_TRUE(report.goal_satisfied);
    EXPECT_NO_THROW(p.graph.check_invariants());
}

TEST(StrategyRunTest, GoalSkipsNonAlwaysPhases)
{
    Strategy s;
    s.name = "goal-skip";
    Phase grow;
    grow.name = "grow";
    grow.rules = {"all"};
    s.phases.push_back(grow);
    Phase extra;
    extra.name = "extra";
    extra.rules = {"all"};
    s.phases.push_back(extra);
    Phase clean;
    clean.name = "clean";
    clean.rules = {"mul-1"};
    clean.always = true;
    s.phases.push_back(clean);
    s.goal = Sketch::contains(Sketch::of_op(Op::kVecMAC));

    Prepared p = prepare(kMacSpec);
    StrategyRunOptions options;
    options.base = small_limits();
    const StrategyReport report = strategy::run_strategy(
        p.graph, p.root, build_rules(RuleConfig(4)), s, options);

    ASSERT_EQ(report.phases.size(), 3u);
    EXPECT_TRUE(report.goal_satisfied);
    EXPECT_GT(report.phases[0].runs, 0);
    // Goal satisfied after "grow": "extra" is skipped, "clean" still runs.
    EXPECT_TRUE(report.phases[1].skipped);
    EXPECT_EQ(report.phases[1].runs, 0);
    EXPECT_FALSE(report.phases[2].skipped);
    EXPECT_GT(report.phases[2].runs, 0);
}

TEST(StrategyRunTest, UntilSketchRerunsUpToRepeat)
{
    Strategy s;
    s.name = "until";
    Phase p;
    p.name = "scalar-only";
    p.rules = {"mul-1", "add-0"};
    p.limits.iter_limit = 1;
    // Scalar rules can never build a VecMAC, so every re-run fails the
    // sketch and the phase runs exactly `repeat` times.
    p.until = Sketch::contains(Sketch::of_op(Op::kVecMAC));
    p.repeat = 3;
    s.phases.push_back(p);

    Prepared g = prepare(kVaddSpec);
    StrategyRunOptions options;
    options.base = small_limits();
    const StrategyReport report = strategy::run_strategy(
        g.graph, g.root, build_rules(RuleConfig(4)), s, options);
    ASSERT_EQ(report.phases.size(), 1u);
    EXPECT_EQ(report.phases[0].runs, 3);
    EXPECT_TRUE(report.phases[0].sketch_checked);
    EXPECT_FALSE(report.phases[0].sketch_satisfied);
}

TEST(StrategyRunTest, PhaseLimitsOnlyTightenTheBase)
{
    // An AC-heavy spec that cannot saturate in two iterations.
    RuleConfig config(4);
    config.full_ac = true;
    Strategy s;
    s.name = "clamped";
    Phase p;
    p.name = "grow";
    p.rules = {"all"};
    p.limits.iter_limit = 100;  // asks for more than the base allows
    s.phases.push_back(p);

    Prepared g = prepare(kMacSpec);
    StrategyRunOptions options;
    options.base = small_limits();
    options.base.iter_limit = 2;
    const StrategyReport report = strategy::run_strategy(
        g.graph, g.root, build_rules(config), s, options);
    EXPECT_LE(report.iterations, 2u);
    EXPECT_EQ(report.stop_reason, StopReason::kIterLimit);
}

TEST(StrategyRunTest, BackoffBansSurfaceInRuleStats)
{
    RuleConfig config(4);
    config.full_ac = true;
    Strategy s;
    s.name = "banned";
    Phase p;
    p.name = "grow";
    p.rules = {"all"};
    p.scheduler.kind = strategy::SchedulerSpec::Kind::kBackoff;
    p.scheduler.threshold = 1;  // ban nearly everything immediately
    s.phases.push_back(p);

    Prepared g = prepare(kMacSpec);
    StrategyRunOptions options;
    options.base = small_limits();
    options.base.iter_limit = 6;
    const StrategyReport report = strategy::run_strategy(
        g.graph, g.root, build_rules(config), s, options);
    int banned_rules = 0;
    for (const RuleStats& rs : report.rule_stats) {
        if (rs.times_banned > 0) {
            ++banned_rules;
            EXPECT_GT(rs.banned_until, 0) << rs.name;
        }
    }
    EXPECT_GT(banned_rules, 0);
}

}  // namespace
}  // namespace diospyros
