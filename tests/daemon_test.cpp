// Daemon tests: the wire codec under hostile bytes (truncation,
// oversized lengths, checksum damage, bit flips — never a crash, never
// an allocation past the declared cap), protocol payload round-trips,
// and the live daemon end to end over a real Unix socket: compile,
// byte-identity vs a local compile, request dedup after a replay,
// status frames, malformed-frame rejection, and local fallback when no
// daemon is listening.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "compiler/driver.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/frame.h"
#include "daemon/protocol.h"
#include "machine/program.h"
#include "scalar/parse.h"
#include "service/serialize.h"
#include "support/error.h"

namespace diospyros {
namespace {

namespace fs = std::filesystem;

using daemon::CompileRequest;
using daemon::CompileResponse;
using daemon::Frame;
using daemon::FrameDecoder;
using daemon::FrameError;
using daemon::FrameErrorKind;
using daemon::FrameType;
using daemon::RemoteClient;
using daemon::RemoteOptions;
using daemon::ResponseStatus;

const char* const kVaddText =
    "(kernel vadd4\n"
    "  (param n 4) (input A n) (input B n) (output C n)\n"
    "  (for i 0 n (store C i (+ (load A i) (load B i)))))\n";

CompilerOptions
test_options()
{
    CompilerOptions options;
    options.target.vector_width = 4;
    options.limits.iter_limit = 6;
    options.limits.node_limit = 20'000;
    options.limits.time_limit_seconds = 5.0;
    return options;
}

/** xorshift64* — deterministic fuzz bytes, no <random> variance. */
std::uint64_t
next_rand(std::uint64_t& state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state * 0x2545F4914F6CDD1DULL;
}

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag)
    {
        path = fs::temp_directory_path() /
               ("dios_daemon_test_" + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string sock() const { return (path / "d.sock").string(); }
};

Frame
make_request_frame(std::uint64_t client_id, std::uint64_t seq)
{
    CompileRequest req;
    req.kernel_name = "vadd4";
    req.kernel_text = kVaddText;
    req.options = test_options();
    Frame frame;
    frame.type = FrameType::kCompileRequest;
    frame.client_id = client_id;
    frame.seq = seq;
    frame.payload = encode_compile_request(req);
    return frame;
}

// ---------------------------------------------------------------------------
// Wire codec: round trip and hostile bytes
// ---------------------------------------------------------------------------

TEST(FrameCodec, RoundTripsAndStreamsMultipleFrames)
{
    Frame a;
    a.type = FrameType::kCompileRequest;
    a.client_id = 7;
    a.seq = 42;
    a.payload = "(hello)";
    Frame b;
    b.type = FrameType::kStatusRequest;
    b.client_id = 7;
    b.seq = 43;
    b.payload = "";

    const std::string wire = encode_frame(a) + encode_frame(b);
    FrameDecoder decoder;
    // Feed one byte at a time: every split point must be handled.
    Frame out;
    FrameError err;
    std::vector<Frame> frames;
    for (const char c : wire) {
        decoder.feed(&c, 1);
        while (decoder.poll(out, err) == FrameDecoder::Status::kFrame) {
            frames.push_back(out);
        }
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, FrameType::kCompileRequest);
    EXPECT_EQ(frames[0].client_id, 7u);
    EXPECT_EQ(frames[0].seq, 42u);
    EXPECT_EQ(frames[0].payload, "(hello)");
    EXPECT_EQ(frames[1].type, FrameType::kStatusRequest);
    EXPECT_EQ(frames[1].payload, "");
}

TEST(FrameCodec, TruncatedFrameStaysNeedMoreNeverCrashes)
{
    Frame a;
    a.type = FrameType::kCompileRequest;
    a.client_id = 1;
    a.seq = 1;
    a.payload = std::string(1000, 'x');
    const std::string wire = encode_frame(a);
    // Every truncation point: decoder reports kNeedMore, never kFrame.
    for (std::size_t cut = 0; cut + 1 < wire.size(); cut += 37) {
        FrameDecoder decoder;
        decoder.feed(wire.data(), cut);
        Frame out;
        FrameError err;
        EXPECT_EQ(decoder.poll(out, err), FrameDecoder::Status::kNeedMore)
            << "cut at " << cut;
    }
}

TEST(FrameCodec, OversizedLengthRejectedBeforePayloadAllocation)
{
    Frame a;
    a.type = FrameType::kCompileRequest;
    a.payload = "small";
    std::string wire = encode_frame(a);
    // Forge a hostile declared length (4 GiB-ish) into the header.
    const std::uint32_t hostile = 0xf0000000u;
    std::memcpy(&wire[28], &hostile, sizeof hostile);

    FrameDecoder decoder;
    decoder.feed(wire.data(), daemon::kHeaderSize);  // header only
    Frame out;
    FrameError err;
    EXPECT_EQ(decoder.poll(out, err), FrameDecoder::Status::kError);
    EXPECT_EQ(err.kind, FrameErrorKind::kOversized);
    // The decoder held only the header: it never allocated anything
    // approaching the declared length.
    EXPECT_LE(decoder.buffered(), daemon::kHeaderSize);
}

TEST(FrameCodec, BadMagicVersionTypeAndChecksumAreStructuredErrors)
{
    const Frame good = make_request_frame(1, 1);
    const std::string wire = encode_frame(good);

    struct Case {
        std::size_t offset;
        FrameErrorKind want;
    };
    const Case cases[] = {
        {0, FrameErrorKind::kBadMagic},      // magic byte
        {4, FrameErrorKind::kBadVersion},    // version field
        {8, FrameErrorKind::kBadType},       // type field
        {33, FrameErrorKind::kBadChecksum},  // checksum field
    };
    for (const Case& c : cases) {
        std::string damaged = wire;
        damaged[c.offset] = static_cast<char>(damaged[c.offset] ^ 0x5a);
        FrameDecoder decoder;
        decoder.feed(damaged.data(), damaged.size());
        Frame out;
        FrameError err;
        EXPECT_EQ(decoder.poll(out, err), FrameDecoder::Status::kError)
            << "offset " << c.offset;
        EXPECT_EQ(err.kind, c.want) << "offset " << c.offset;
        // Poisoned: further feeds are discarded, the error is sticky.
        decoder.feed(wire.data(), wire.size());
        EXPECT_EQ(decoder.poll(out, err), FrameDecoder::Status::kError);
    }
}

TEST(FrameCodec, PayloadBitFlipsAreCaughtByTheChecksum)
{
    const Frame good = make_request_frame(9, 9);
    const std::string wire = encode_frame(good);
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    for (int trial = 0; trial < 64; ++trial) {
        std::string damaged = wire;
        const std::size_t pos =
            daemon::kHeaderSize +
            next_rand(rng) % (damaged.size() - daemon::kHeaderSize);
        const char bit = static_cast<char>(1u << (next_rand(rng) % 8));
        damaged[pos] = static_cast<char>(damaged[pos] ^ bit);
        FrameDecoder decoder;
        decoder.feed(damaged.data(), damaged.size());
        Frame out;
        FrameError err;
        EXPECT_EQ(decoder.poll(out, err), FrameDecoder::Status::kError)
            << "flip at " << pos;
        EXPECT_EQ(err.kind, FrameErrorKind::kBadChecksum);
    }
}

TEST(FrameCodec, RandomGarbageNeverCrashesAndNeverOverbuffers)
{
    std::uint64_t rng = 0xdeadbeefcafef00dULL;
    for (int trial = 0; trial < 256; ++trial) {
        const std::size_t len = 1 + next_rand(rng) % 4096;
        std::string garbage(len, '\0');
        for (char& c : garbage) {
            c = static_cast<char>(next_rand(rng) & 0xff);
        }
        FrameDecoder decoder;
        // Arbitrary chunking.
        std::size_t off = 0;
        while (off < garbage.size()) {
            const std::size_t chunk =
                std::min<std::size_t>(1 + next_rand(rng) % 97,
                                      garbage.size() - off);
            decoder.feed(garbage.data() + off, chunk);
            off += chunk;
            Frame out;
            FrameError err;
            while (decoder.poll(out, err) == FrameDecoder::Status::kFrame) {
            }
        }
        // The decoder never buffers more than it was fed, and a valid
        // header would have capped the pending frame at the protocol
        // limit.
        EXPECT_LE(decoder.buffered(), garbage.size());
        EXPECT_LE(decoder.buffered(),
                  daemon::kHeaderSize + daemon::kMaxPayloadLen);
    }
}

// ---------------------------------------------------------------------------
// Protocol payloads
// ---------------------------------------------------------------------------

TEST(Protocol, CompileRequestRoundTripsOptions)
{
    CompileRequest req;
    req.kernel_name = "dot4";
    req.kernel_text = "(kernel dot4 (param n 4))";
    req.options = test_options();
    req.options.rules.full_ac = true;
    req.options.target.has_reciprocal = true;
    req.options.validate = true;
    req.options.random_check = true;
    req.options.verify_ir = true;
    req.options.io_retries = 7;
    req.priority = service::Priority::kInteractive;
    req.submit_timeout_seconds = 1.5;

    const CompileRequest back =
        daemon::decode_compile_request(encode_compile_request(req));
    EXPECT_EQ(back.kernel_name, req.kernel_name);
    EXPECT_EQ(back.kernel_text, req.kernel_text);
    EXPECT_EQ(back.priority, service::Priority::kInteractive);
    EXPECT_DOUBLE_EQ(back.submit_timeout_seconds, 1.5);
    EXPECT_EQ(back.options.target.vector_width, 4);
    EXPECT_TRUE(back.options.rules.full_ac);
    EXPECT_TRUE(back.options.target.has_reciprocal);
    EXPECT_TRUE(back.options.rules.target_has_recip);  // sync() ran
    EXPECT_TRUE(back.options.validate);
    EXPECT_TRUE(back.options.verify_ir);
    EXPECT_EQ(back.options.io_retries, 7);
    EXPECT_EQ(back.options.limits.iter_limit, 6);
}

TEST(Protocol, RejectsUnsupportedWidthAtTheBoundary)
{
    CompileRequest req;
    req.kernel_name = "dot4";
    req.kernel_text = "(kernel dot4 (param n 4))";
    req.options = test_options();
    std::string wire = encode_compile_request(req);
    const std::string tag = "(width ";
    const std::size_t at = wire.find(tag);
    ASSERT_NE(at, std::string::npos);
    const std::size_t end = wire.find(')', at);
    for (const char* bad : {"0", "-4", "3", "32", "1024"}) {
        std::string mutated = wire;
        mutated.replace(at, end - at, tag + std::string(bad));
        EXPECT_THROW(daemon::decode_compile_request(mutated), UserError)
            << "width " << bad;
    }
    // Every in-range power of two decodes.
    for (const char* good : {"1", "2", "4", "8", "16"}) {
        std::string mutated = wire;
        mutated.replace(at, end - at, tag + std::string(good));
        const CompileRequest back =
            daemon::decode_compile_request(mutated);
        EXPECT_EQ(back.options.target.vector_width,
                  std::stoi(std::string(good)));
    }
}

TEST(Protocol, CompileResponseRoundTripsAllStatuses)
{
    CompileResponse shed;
    shed.status = ResponseStatus::kShed;
    shed.retry_after_ms = 125;
    shed.failure_class = FailureClass::kOverloaded;
    shed.error = "service overloaded";
    const CompileResponse shed_back = daemon::decode_compile_response(
        daemon::encode_compile_response(shed));
    EXPECT_EQ(shed_back.status, ResponseStatus::kShed);
    EXPECT_EQ(shed_back.retry_after_ms, 125u);
    EXPECT_EQ(shed_back.failure_class, FailureClass::kOverloaded);

    CompileResponse failed;
    failed.status = ResponseStatus::kFailed;
    failed.failure_class = FailureClass::kUser;
    failed.error = "bad kernel \"quoted\"";
    const CompileResponse failed_back = daemon::decode_compile_response(
        daemon::encode_compile_response(failed));
    EXPECT_EQ(failed_back.status, ResponseStatus::kFailed);
    EXPECT_EQ(failed_back.failure_class, FailureClass::kUser);
    EXPECT_EQ(failed_back.error, failed.error);
}

TEST(Protocol, MalformedPayloadsRaiseUserErrorNeverCrash)
{
    EXPECT_THROW(daemon::decode_compile_request("(((("), UserError);
    EXPECT_THROW(daemon::decode_compile_request("(not-a-request)"),
                 UserError);
    EXPECT_THROW(daemon::decode_compile_request("(compile-request)"),
                 UserError);
    EXPECT_THROW(daemon::decode_compile_response("(compile-response)"),
                 UserError);
    EXPECT_THROW(
        daemon::decode_compile_response(
            "(compile-response (status ok))"),  // ok without an entry
        UserError);
}

// ---------------------------------------------------------------------------
// Live daemon end to end
// ---------------------------------------------------------------------------

TEST(DaemonEndToEnd, RemoteCompileIsByteIdenticalToLocal)
{
    TempDir dir("e2e");
    daemon::DaemonOptions dopts;
    dopts.socket_path = dir.sock();
    dopts.service.jobs = 1;
    dopts.service.cache_dir = (dir.path / "cache").string();
    daemon::Daemon d(dopts);
    d.start();

    const scalar::Kernel kernel = scalar::parse_kernel(kVaddText);
    const CompilerOptions options = test_options();

    RemoteOptions ropts;
    ropts.socket_path = dir.sock();
    ropts.jitter_seed = 1;
    RemoteClient client(ropts);
    CompileRequest req;
    req.kernel_name = kernel.name;
    req.kernel_text = kVaddText;
    req.options = options;
    const auto resp = client.compile(req);
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->status, ResponseStatus::kOk);
    const CompiledKernel remote =
        service::compiled_from_entry(kernel, *resp->entry);

    const CompileResult local = compile_kernel_resilient(kernel, options);
    ASSERT_TRUE(local.ok);
    EXPECT_EQ(remote.c_source, local.compiled->c_source);
    EXPECT_EQ(disassemble(remote.machine, options.target.vector_width),
              disassemble(local.compiled->machine,
                          options.target.vector_width));

    d.shutdown();
}

TEST(DaemonEndToEnd, ReplayedFrameIsServedFromDedupNotRecompiled)
{
    TempDir dir("dedup");
    daemon::DaemonOptions dopts;
    dopts.socket_path = dir.sock();
    dopts.service.jobs = 1;
    daemon::Daemon d(dopts);
    d.start();

    // Speak the protocol by hand so the exact same (client_id, seq)
    // frame goes out twice — what a retry after a torn reply does.
    const Frame request = make_request_frame(0xc11e47, 1);
    const std::string wire = daemon::encode_frame(request);

    auto exchange = [&]() -> Frame {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, dir.sock().c_str(),
                     sizeof addr.sun_path - 1);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr),
                  0);
        EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(wire.size()));
        FrameDecoder decoder;
        Frame out;
        FrameError err;
        char buf[65536];
        for (;;) {
            if (decoder.poll(out, err) == FrameDecoder::Status::kFrame) {
                break;
            }
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0) {
                ADD_FAILURE() << "connection closed before a reply";
                break;
            }
            decoder.feed(buf, static_cast<std::size_t>(n));
        }
        ::close(fd);
        return out;
    };

    const Frame first = exchange();
    const Frame second = exchange();  // replay on a NEW connection
    EXPECT_EQ(first.type, FrameType::kCompileResponse);
    EXPECT_EQ(second.type, FrameType::kCompileResponse);
    // Identical recorded bytes, and the daemon counted a dedup hit
    // instead of compiling twice.
    EXPECT_EQ(first.payload, second.payload);
    EXPECT_EQ(d.dedup_hits(), 1u);
    EXPECT_EQ(d.remote_requests(), 2u);

    const std::string status = d.status_json();
    EXPECT_NE(status.find("\"dedup_hits\":1"), std::string::npos);
    EXPECT_NE(status.find("\"uptime_seconds\":"), std::string::npos);

    d.shutdown();
}

TEST(DaemonEndToEnd, MalformedFramesAreRejectedWithoutCrashing)
{
    TempDir dir("reject");
    daemon::DaemonOptions dopts;
    dopts.socket_path = dir.sock();
    dopts.service.jobs = 1;
    dopts.read_deadline_seconds = 0.5;
    daemon::Daemon d(dopts);
    d.start();

    auto open_conn = [&]() -> int {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, dir.sock().c_str(),
                     sizeof addr.sun_path - 1);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr),
                  0);
        return fd;
    };
    auto drain_until_closed = [](int fd) {
        char buf[4096];
        while (::recv(fd, buf, sizeof buf, 0) > 0) {
        }
        ::close(fd);
    };

    // Garbage covering a full header: rejected instantly (bad magic),
    // error frame sent, connection dropped.
    const int fd = open_conn();
    const std::string garbage(64, '!');
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(garbage.size()));
    drain_until_closed(fd);
    EXPECT_GE(d.frames_rejected(), 1u);

    // A torn frame whose sender stalls: the read deadline frees the
    // handler thread and counts the stall.
    const std::uint64_t rejected_before = d.frames_rejected();
    const int torn = open_conn();
    const std::string partial = "DIOS";  // header prefix, then silence
    ASSERT_EQ(::send(torn, partial.data(), partial.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(partial.size()));
    drain_until_closed(torn);  // daemon closes at the deadline
    EXPECT_GT(d.frames_rejected(), rejected_before);

    RemoteOptions ropts;
    ropts.socket_path = dir.sock();
    ropts.jitter_seed = 2;
    RemoteClient client(ropts);
    CompileRequest req;
    req.kernel_name = "vadd4";
    req.kernel_text = kVaddText;
    req.options = test_options();
    const auto resp = client.compile(req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, ResponseStatus::kOk);

    d.shutdown();
}

TEST(DaemonEndToEnd, SecondDaemonOnTheSameSocketIsRefused)
{
    TempDir dir("lock");
    daemon::DaemonOptions dopts;
    dopts.socket_path = dir.sock();
    dopts.service.jobs = 1;
    daemon::Daemon first(dopts);
    first.start();

    daemon::Daemon second(dopts);
    EXPECT_THROW(second.start(), UserError);

    first.shutdown();
    // With the first daemon gone (flock released, socket unlinked), the
    // same socket is takeoverable.
    daemon::Daemon third(dopts);
    third.start();
    EXPECT_TRUE(third.running());
    third.shutdown();
}

TEST(RemoteClientFallback, UnreachableSocketReturnsNulloptQuickly)
{
    RemoteOptions ropts;
    ropts.socket_path = "/tmp/dios_daemon_test_no_such_socket.sock";
    ropts.max_attempts = 2;
    ropts.backoff_initial_ms = 1.0;
    ropts.backoff_max_ms = 2.0;
    ropts.jitter_seed = 3;
    RemoteClient client(ropts);
    CompileRequest req;
    req.kernel_name = "vadd4";
    req.kernel_text = kVaddText;
    req.options = test_options();
    const auto resp = client.compile(req);
    EXPECT_FALSE(resp.has_value());
    EXPECT_EQ(client.counters().remote_fallback_local, 1u);
    EXPECT_EQ(client.counters().remote_retries, 1u);
    EXPECT_FALSE(client.status().has_value());
}

}  // namespace
}  // namespace diospyros
