// Tests for the vectorization rewrite rules and the cost model.
// Every rule family is checked for (a) the rewrites it must find and
// (b) soundness via differential evaluation of extracted terms.

#include <gtest/gtest.h>

#include "egraph/extract.h"
#include "egraph/runner.h"
#include "ir/eval.h"
#include "rules/cost.h"
#include "rules/rules.h"
#include "support/rng.h"

namespace diospyros {
namespace {

RunnerLimits
small_limits()
{
    return RunnerLimits{.node_limit = 200'000,
                        .iter_limit = 12,
                        .time_limit_seconds = 20.0};
}

/** Saturate `spec` under `config` and extract the best term. */
TermRef
optimize(const std::string& spec, RuleConfig config = RuleConfig(4))
{
    EGraph g;
    const ClassId root = g.add_term(Term::parse(spec));
    g.rebuild();
    Runner runner(small_limits());
    runner.run(g, build_rules(config));
    const DiosCostModel cost({}, config.vector_width);
    const Extractor ex(g, cost);
    return ex.extract(g.find(root)).term;
}

/** True if `term` contains the operator anywhere. */
bool
contains_op(const TermRef& term, Op op)
{
    if (term->op() == op) {
        return true;
    }
    for (const TermRef& c : term->children()) {
        if (contains_op(c, op)) {
            return true;
        }
    }
    return false;
}

TEST(ListChunk, SplitsIntoWidthVectorsWithPadding)
{
    RuleConfig config(4);
    // 6 outputs -> two Vec chunks, the second padded with two zeros. For a
    // pure data copy the cost model may still *extract* the scalar List
    // (nothing to vectorize), so check the e-graph itself contains the
    // chunked form and that the chunked form evaluates correctly.
    EGraph g;
    const ClassId root = g.add_term(Term::parse(
        "(List (Get a 0) (Get a 1) (Get a 2) (Get a 3) (Get a 4) (Get a "
        "5))"));
    g.rebuild();
    Runner(small_limits()).run(g, build_rules(config));

    const ENode* concat = nullptr;
    for (const ENode& n : g.eclass(g.find(root)).nodes) {
        if (n.op == Op::kConcat) {
            concat = &n;
        }
    }
    ASSERT_NE(concat, nullptr) << "root class lacks the chunked form";

    // Force extraction of the chunked form by extracting its children and
    // reassembling; padding zeros must land at the tail.
    const DiosCostModel cost({}, 4);
    const Extractor ex(g, cost);
    const TermRef lhs = ex.extract(g.find(concat->children[0])).term;
    const TermRef rhs = ex.extract(g.find(concat->children[1])).term;
    const TermRef whole = Term::make(Op::kConcat, {lhs, rhs});
    EvalEnv env;
    env.bind_array("a", {1, 2, 3, 4, 5, 6});
    const auto v = evaluate(whole, env);
    ASSERT_EQ(v.size(), 8u);  // padded to 2 chunks of 4
    EXPECT_EQ(std::vector<double>(v.begin(), v.begin() + 6),
              (std::vector<double>{1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(v[6], 0.0);
    EXPECT_EQ(v[7], 0.0);
}

TEST(VecLift, VectorizesAlignedAdd)
{
    // The paper §3.2 example (width 2): 4-element vector-vector add.
    RuleConfig config(2);
    const TermRef best = optimize(
        "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)) (+ (Get a "
        "2) (Get b 2)) (+ (Get a 3) (Get b 3)))",
        config);
    EXPECT_TRUE(contains_op(best, Op::kVecAdd));
    // Fully vectorized: no scalar + survives.
    EXPECT_FALSE(contains_op(best, Op::kAdd));
    EvalEnv env;
    env.bind_array("a", {1, 2, 3, 4});
    env.bind_array("b", {10, 20, 30, 40});
    EXPECT_EQ(evaluate(best, env),
              (std::vector<double>{11, 22, 33, 44}));
}

TEST(VecLift, HandlesZeroLanes)
{
    // The §3.3 concrete rewrite: (Vec (+ a b) 0 (+ c d) 0).
    RuleConfig config(4);
    const TermRef best = optimize(
        "(List (+ (Get a 0) (Get b 0)) 0 (+ (Get a 2) (Get b 2)) 0)",
        config);
    EXPECT_TRUE(contains_op(best, Op::kVecAdd) ||
                contains_op(best, Op::kVecMAC));
    EvalEnv env;
    env.bind_array("a", {1, 2, 3, 4});
    env.bind_array("b", {10, 20, 30, 40});
    EXPECT_EQ(evaluate(best, env), (std::vector<double>{11, 0, 33, 0}));
}

TEST(VecLift, BareLanesVectorizeViaIdentity)
{
    // Mixed vector: two adds, one bare element, one zero.
    RuleConfig config(4);
    const TermRef best = optimize(
        "(List (+ (Get a 0) (Get b 0)) (Get a 1) (+ (Get a 2) (Get b 2)) "
        "0)",
        config);
    EXPECT_TRUE(contains_op(best, Op::kVecAdd) ||
                contains_op(best, Op::kVecMAC));
    EvalEnv env;
    env.bind_array("a", {1, 2, 3, 4});
    env.bind_array("b", {10, 20, 30, 40});
    EXPECT_EQ(evaluate(best, env), (std::vector<double>{11, 2, 33, 0}));
}

TEST(VecLift, UnaryOperators)
{
    RuleConfig config(4);
    const TermRef best = optimize(
        "(List (sqrt (Get a 0)) (sqrt (Get a 1)) (sqrt (Get a 2)) 0)",
        config);
    EXPECT_TRUE(contains_op(best, Op::kVecSqrt));
    EvalEnv env;
    env.bind_array("a", {4, 9, 16, 25});
    EXPECT_EQ(evaluate(best, env), (std::vector<double>{2, 3, 4, 0}));
}

TEST(VecMac, FusesMultiplyAccumulateLanes)
{
    // Each lane (+ acc (* b c)); this is the motivating 2DConv shape.
    RuleConfig config(2);
    const TermRef best = optimize(
        "(List (+ (Get o 0) (* (Get i 0) (Get f 0))) (+ (Get o 1) (* (Get "
        "i 1) (Get f 0))))",
        config);
    EXPECT_TRUE(contains_op(best, Op::kVecMAC));
    EvalEnv env;
    env.bind_array("o", {1, 2});
    env.bind_array("i", {3, 4});
    env.bind_array("f", {5});
    EXPECT_EQ(evaluate(best, env), (std::vector<double>{16, 22}));
}

TEST(VecMac, HandlesCommutedAndPartialLanes)
{
    // The §3.3 example: three MAC-shaped lanes plus one commuted lane
    // (+ (* b3 c3) a3).
    RuleConfig config(4);
    const TermRef best = optimize(
        "(List (+ (Get a 0) (* (Get b 0) (Get c 0)))"
        " (+ (Get a 1) (* (Get b 1) (Get c 1)))"
        " (+ (Get a 2) (* (Get b 2) (Get c 2)))"
        " (+ (* (Get b 3) (Get c 3)) (Get a 3)))",
        config);
    EXPECT_TRUE(contains_op(best, Op::kVecMAC));
    EXPECT_FALSE(contains_op(best, Op::kAdd));
    EvalEnv env;
    env.bind_array("a", {1, 1, 1, 1});
    env.bind_array("b", {2, 3, 4, 5});
    env.bind_array("c", {10, 10, 10, 10});
    EXPECT_EQ(evaluate(best, env),
              (std::vector<double>{21, 31, 41, 51}));
}

TEST(VecMac, PureProductsUseZeroAccumulator)
{
    RuleConfig config(2);
    const TermRef best = optimize(
        "(List (* (Get b 0) (Get c 0)) (* (Get b 1) (Get c 1)))", config);
    // Either VecMul directly or VecMAC with zero acc; both vectorize.
    EXPECT_TRUE(contains_op(best, Op::kVecMul) ||
                contains_op(best, Op::kVecMAC));
    EvalEnv env;
    env.bind_array("b", {3, 4});
    env.bind_array("c", {5, 6});
    EXPECT_EQ(evaluate(best, env), (std::vector<double>{15, 24}));
}

TEST(ScalarRules, SimplifyIdentities)
{
    RuleConfig config(4);
    config.enable_vector_rules = false;
    const TermRef best =
        optimize("(+ (* (Get a 0) 1) (* (Get a 1) 0))", config);
    EXPECT_EQ(Term::to_string(best), "(Get a 0)");
}

TEST(ScalarRules, NegationNormalizes)
{
    RuleConfig config(4);
    config.enable_vector_rules = false;
    const TermRef best = optimize("(neg (neg (Get a 0)))", config);
    EXPECT_EQ(Term::to_string(best), "(Get a 0)");
    const TermRef best2 =
        optimize("(* (neg (Get a 0)) (neg (Get a 1)))", config);
    EXPECT_EQ(Term::to_string(best2), "(* (Get a 0) (Get a 1))");
}

TEST(ScalarRules, SubSelfIsZero)
{
    RuleConfig config(4);
    config.enable_vector_rules = false;
    EXPECT_EQ(Term::to_string(
                  optimize("(- (+ (Get a 0) 0) (Get a 0))", config)),
              "0");
}

TEST(TargetExtension, RecipRuleFires)
{
    // Paper §6: adding a fast-reciprocal instruction is two rule hooks.
    RuleConfig config(2);
    config.target_has_recip = true;
    const TermRef best = optimize(
        "(List (/ 1 (Get a 0)) (/ 1 (Get a 1)))", config);
    EXPECT_TRUE(contains_op(best, Op::kVecRecip) ||
                contains_op(best, Op::kRecip));
}

TEST(TargetExtension, WithoutRecipNoRecipAppears)
{
    RuleConfig config(2);
    config.target_has_recip = false;
    const TermRef best = optimize(
        "(List (/ 1 (Get a 0)) (/ 1 (Get a 1)))", config);
    EXPECT_FALSE(contains_op(best, Op::kRecip));
    EXPECT_FALSE(contains_op(best, Op::kVecRecip));
}

TEST(FullAc, FindsRewritesAcrossAssociativity)
{
    // (a + b) + c == a + (b + c): only provable with AC on.
    RuleConfig config(4);
    config.enable_vector_rules = false;
    config.full_ac = true;
    EGraph g;
    const ClassId lhs = g.add_term(
        Term::parse("(+ (+ (Get a 0) (Get a 1)) (Get a 2))"));
    const ClassId rhs = g.add_term(
        Term::parse("(+ (Get a 0) (+ (Get a 1) (Get a 2)))"));
    g.rebuild();
    Runner(small_limits()).run(g, build_rules(config));
    EXPECT_EQ(g.find(lhs), g.find(rhs));
}

TEST(CostModel, PrefersVectorizedForms)
{
    EGraph g;
    // Two equivalent classes merged by hand: scalar adds vs VecAdd.
    const ClassId root = g.add_term(Term::parse(
        "(Vec (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1)))"));
    const ClassId vectorized = g.add_term(Term::parse(
        "(VecAdd (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get b 1)))"));
    g.merge(root, vectorized);
    g.rebuild();
    const DiosCostModel cost({}, 2);
    const Extractor ex(g, cost);
    const Extraction best = ex.extract(g.find(root));
    EXPECT_EQ(best.term->op(), Op::kVecAdd);
}

TEST(CostModel, ClassifiesVecDataMovement)
{
    const DiosCostModel cost({}, 4);
    EGraph g;

    auto classify = [&](const std::string& vec) {
        const ClassId id = g.add_term(Term::parse(vec));
        g.rebuild();
        for (const ENode& n : g.eclass(g.find(id)).nodes) {
            if (n.op == Op::kVec) {
                return cost.classify_vec(g, n);
            }
        }
        throw std::logic_error("no Vec node");
    };

    EXPECT_EQ(classify("(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"),
              DiosCostModel::VecKind::kContiguousLoad);
    EXPECT_EQ(classify("(Vec (Get a 1) (Get a 2) (Get a 0) (Get a 3))"),
              DiosCostModel::VecKind::kSingleArrayShuffle);
    EXPECT_EQ(classify("(Vec (Get a 4) (Get a 5) (Get a 6) (Get a 7))"),
              DiosCostModel::VecKind::kContiguousLoad);
    // Unaligned run: still one array, but not a plain aligned load.
    EXPECT_EQ(classify("(Vec (Get a 1) (Get a 2) (Get a 3) (Get a 4))"),
              DiosCostModel::VecKind::kSingleArrayShuffle);
    EXPECT_EQ(classify("(Vec (Get a 0) (Get b 0) (Get a 1) (Get b 1))"),
              DiosCostModel::VecKind::kMultiArraySelect);
    EXPECT_EQ(classify("(Vec (Get a 0) 0 (Get a 1) 0)"),
              DiosCostModel::VecKind::kSingleArrayShuffle);
    EXPECT_EQ(
        classify("(Vec (+ (Get a 0) (Get b 0)) (Get a 1) (Get a 2) 0)"),
        DiosCostModel::VecKind::kHasScalarComputation);
}

TEST(CostModel, AliasedLanesClassifyByTheTrackedArray)
{
    // Regression: after rewrites merge classes, a lane class can hold
    // Gets from several arrays — here (Get b 9) is stored *before*
    // (Get a 1) in the merged class. Classification must follow the
    // array the vector is tracking (a), not whichever Get happens to be
    // first; the old code classified this aligned a[0..3] load as a
    // multi-array select.
    const DiosCostModel cost({}, 4);
    EGraph g(false);
    const ClassId b9 = g.add_get(Symbol("b"), 9);
    const ClassId a1 = g.add_get(Symbol("a"), 1);
    g.merge(b9, a1);  // b9 survives, so its Get is stored first
    const ClassId a0 = g.add_get(Symbol("a"), 0);
    const ClassId a2 = g.add_get(Symbol("a"), 2);
    const ClassId a3 = g.add_get(Symbol("a"), 3);
    const ClassId vec = g.add_op(Op::kVec, {a0, g.find(b9), a2, a3});
    g.rebuild();
    bool checked = false;
    for (const ENode& n : g.eclass(g.find(vec)).nodes) {
        if (n.op == Op::kVec) {
            EXPECT_EQ(cost.classify_vec(g, n),
                      DiosCostModel::VecKind::kContiguousLoad);
            checked = true;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(CostModel, MultiArrayVecNeverCostsContiguous)
{
    // A cross-array gather must never be priced as a contiguous load,
    // wherever the foreign lane sits relative to the tracked run.
    const DiosCostModel cost({}, 4);
    for (const char* text :
         {"(Vec (Get a 0) (Get b 1) (Get a 1) (Get a 2))",
          "(Vec (Get a 0) (Get a 1) (Get a 2) (Get b 3))",
          "(Vec (Get b 0) (Get a 1) (Get a 2) (Get a 3))"}) {
        EGraph g;
        const ClassId id = g.add_term(Term::parse(text));
        g.rebuild();
        bool checked = false;
        for (const ENode& n : g.eclass(g.find(id)).nodes) {
            if (n.op == Op::kVec) {
                EXPECT_EQ(cost.classify_vec(g, n),
                          DiosCostModel::VecKind::kMultiArraySelect)
                    << text;
                checked = true;
            }
        }
        EXPECT_TRUE(checked) << text;
    }
}

TEST(CostModel, ForeignLanesDoNotBreakTheTrackedRun)
{
    // The foreign lane must not advance the tracked array's expected
    // index: a[0], b[5], a[1], a[2] is a's run 0,1,2 with one foreign
    // element — a multi-array select, but critically not a misaligned
    // mess that extraction would price as if a's run were broken.
    const DiosCostModel cost({}, 4);
    EGraph g;
    const ClassId id = g.add_term(
        Term::parse("(Vec (Get a 0) (Get b 5) (Get a 1) (Get a 2))"));
    g.rebuild();
    for (const ENode& n : g.eclass(g.find(id)).nodes) {
        if (n.op == Op::kVec) {
            EXPECT_EQ(cost.classify_vec(g, n),
                      DiosCostModel::VecKind::kMultiArraySelect);
        }
    }
}

TEST(CostModel, SingleArrayShufflesCheaperThanCrossArray)
{
    // The paper's §3.4 statement, directly.
    const DiosCostModel cost({}, 2);
    EGraph g;
    const ClassId single =
        g.add_term(Term::parse("(Vec (Get a 1) (Get a 0))"));
    const ClassId multi =
        g.add_term(Term::parse("(Vec (Get a 1) (Get b 0))"));
    g.rebuild();
    const Extractor ex(g, cost);
    EXPECT_LT(ex.class_cost(g.find(single)), ex.class_cost(g.find(multi)));
}

TEST(RuleSoundness, RandomSpecsEvaluateIdentically)
{
    // Property: for random small specs, saturation + extraction under the
    // full default rule set preserves semantics exactly.
    Rng rng(77);
    RuleConfig config(4);
    const std::vector<Rewrite> rules = build_rules(config);
    const DiosCostModel cost({}, 4);

    for (int trial = 0; trial < 15; ++trial) {
        // Random lanes: each is 0, a get, a product, or an acc+product.
        std::vector<TermRef> lanes;
        const int n = static_cast<int>(rng.uniform_int(1, 7));
        for (int i = 0; i < n; ++i) {
            auto get = [&](const char* arr) {
                return t_get(arr, rng.uniform_int(0, 7));
            };
            switch (rng.uniform_int(0, 3)) {
              case 0:
                lanes.push_back(t_const(0));
                break;
              case 1:
                lanes.push_back(get("a"));
                break;
              case 2:
                lanes.push_back(t_mul(get("a"), get("f")));
                break;
              default:
                lanes.push_back(
                    t_add(get("o"), t_mul(get("a"), get("f"))));
                break;
            }
        }
        const TermRef spec = t_list(lanes);
        EGraph g;
        const ClassId root = g.add_term(spec);
        g.rebuild();
        Runner(small_limits()).run(g, rules);
        const Extractor ex(g, cost);
        const TermRef best = ex.extract(g.find(root)).term;

        EvalEnv env;
        Rng data_rng(static_cast<std::uint64_t>(trial) + 1000);
        auto mk = [&] {
            std::vector<double> v(8);
            for (auto& x : v) {
                x = data_rng.uniform(-3, 3);
            }
            return v;
        };
        env.bind_array("a", mk());
        env.bind_array("f", mk());
        env.bind_array("o", mk());
        const auto expected = evaluate(spec, env);
        auto actual = evaluate(best, env);
        ASSERT_GE(actual.size(), expected.size()) << "trial " << trial;
        actual.resize(expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_NEAR(actual[i], expected[i], 1e-9)
                << "trial " << trial << " lane " << i << "\nspec:  "
                << Term::to_string(spec) << "\nbest:  "
                << Term::to_string(best);
        }
    }
}

}  // namespace
}  // namespace diospyros
