#!/usr/bin/env bash
# Sanitizer gate: build the whole tree (library, tools, tests, benches)
# under ASan + UBSan and run the full test suite, including
# fuzz_compiler_test and resilience_test, with sanitizer reports
# promoted to hard failures. Then build the concurrency-sensitive
# subset (the compile service and the fault registry it leans on)
# under ThreadSanitizer and run service_test + resilience_test, so
# data races in the worker pool fail the gate too. In between, a
# crash-consistency torture loop SIGKILLs dioscc mid-store and
# bit-flips cache entries to prove the disk cache self-heals.
# Run from anywhere; ~5-10 minutes.
#
#   tools/check.sh            # ASan+UBSan + TSan gates
#   tools/check.sh --fast     # reuse existing build dirs without reconfigure
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-asan"
build_tsan="$repo/build-tsan"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${1:-}" != "--fast" || ! -d "$build" ]]; then
    cmake --preset asan -S "$repo"
fi
cmake --build "$build" -j "$jobs"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "check.sh: all tests passed under ASan+UBSan"

# Rule soundness: every registered rewrite must prove equivalent under
# the exact validator (non-zero exit on any unsound rule).
"$build/tools/dioscc" --lint-rules > /dev/null
echo "check.sh: rule soundness lint passed"

# Strategy self-check: every built-in saturation strategy must resolve
# all its rule references against the default rule set and round-trip
# through its canonical DSL text (non-zero exit on any failure).
"$build/tools/dioscc" --lint-strategies > /dev/null
echo "check.sh: strategy lint passed"

# Machine-verifier corpus gate (DESIGN.md §5i): every kernel in
# tools/kernels compiles under ASan with the full machine-code
# verification chain engaged — structural M001-M007 checks on the
# emitted program, the M008 scheduler-preservation proof, and symbolic
# machine-level translation validation of the scheduled code against
# the spec. --strict turns any degradation into a hard failure, and the
# debug build also runs the M-verifier startup self-check on each
# invocation (planted M004/M008 bugs must be caught before any real
# compile is attempted).
for ksp in "$repo"/tools/kernels/*.ksp; do
    DIOS_NO_RULE_LINT=1 "$build/tools/dioscc" "$ksp" \
        --verify-machine --validate --strict > /dev/null
done
echo "check.sh: machine verifier corpus gate passed"

# Crash-consistency torture (DESIGN.md §5e): SIGKILL dioscc --batch
# mid-store dozens of times via the DIOS_CACHE_KILL hook, then damage a
# quarter-plus of the surviving entries, and prove the store self-heals:
# warm runs serve artifacts byte-identical to a cold compile, damaged
# entries land in quarantine/ (never served), and no torn .tmp files
# survive recovery.
torture="$build/torture"
rm -rf "$torture"
mkdir -p "$torture"
cache="$torture/cache"
for n in 4 8 12; do
    cat > "$torture/vadd$n.dios" <<EOF
(kernel vadd$n
  (param n $n) (input A n) (input B n) (output C n)
  (for i 0 n (store C i (+ (load A i) (load B i)))))
EOF
    echo "$torture/vadd$n.dios" >> "$torture/manifest"
done

# Cold (cache-less) reference artifacts; the JSON line carries wall-clock
# timings, so only the emitted C below it is compared.
for n in 4 8 12; do
    DIOS_NO_RULE_LINT=1 "$build/tools/dioscc" "$torture/vadd$n.dios" \
        --json --emit-c 2> /dev/null | tail -n +2 > "$torture/cold$n.c"
done

mkdir -p "$cache"
kills=0
for i in $(seq 1 60); do
    # Evict one entry so every round performs at least one store, and
    # cycle the kill target over both kill points of all three stores
    # (targets past the last visit simply complete the run). Entries
    # live under key-sharded directories (shard/<2-hex>/); quarantined
    # files are not entries.
    find "$cache" -name '*.sexpr' -not -path '*/quarantine/*' \
        | head -n 1 | xargs -r rm -f
    status=0
    DIOS_CACHE_KILL=$((i % 6 + 1)) DIOS_NO_RULE_LINT=1 \
        "$build/tools/dioscc" --batch "$torture/manifest" \
        --cache-dir "$cache" > /dev/null 2>&1 || status=$?
    if [[ "$status" -eq 137 ]]; then
        kills=$((kills + 1))
    elif [[ "$status" -ne 0 ]]; then
        echo "check.sh: torture run $i failed with status $status" >&2
        exit 1
    fi
done
if [[ "$kills" -lt 10 ]]; then
    echo "check.sh: torture loop killed only $kills/60 runs" >&2
    exit 1
fi

# One clean run lets the recovery scan reclaim the orphans of the 60
# crashes and refill the store.
DIOS_NO_RULE_LINT=1 "$build/tools/dioscc" --batch "$torture/manifest" \
    --cache-dir "$cache" > /dev/null 2>&1

# Damage 2 of the 3 entries (>25%): truncate one, zero a span in another.
mapfile -t entries < <(find "$cache" -name '*.sexpr' \
    -not -path '*/quarantine/*' | sort)
if [[ "${#entries[@]}" -ne 3 ]]; then
    echo "check.sh: expected 3 cache entries, found ${#entries[@]}" >&2
    exit 1
fi
size=$(stat -c %s "${entries[0]}")
head -c $((size / 2)) "${entries[0]}" > "${entries[0]}.trunc"
mv "${entries[0]}.trunc" "${entries[0]}"
size=$(stat -c %s "${entries[1]}")
dd if=/dev/zero of="${entries[1]}" bs=1 seek=$((size / 2)) count=16 \
    conv=notrunc status=none

# The warm runs over the damaged store must still be byte-identical to
# the cold reference — corrupt entries are quarantined and recompiled,
# never served.
for n in 4 8 12; do
    DIOS_NO_RULE_LINT=1 "$build/tools/dioscc" "$torture/vadd$n.dios" \
        --json --emit-c --cache-dir "$cache" 2> /dev/null \
        | tail -n +2 > "$torture/warm$n.c"
    cmp "$torture/cold$n.c" "$torture/warm$n.c"
done

if find "$cache" -name '*.tmp.*' | grep -q .; then
    echo "check.sh: torn .tmp files survived recovery" >&2
    exit 1
fi
quarantined=$(find "$cache" -path '*/quarantine/*' -name '*.sexpr' \
    2> /dev/null | wc -l)
if [[ "$quarantined" -lt 2 ]]; then
    echo "check.sh: expected >=2 quarantined entries, got $quarantined" >&2
    exit 1
fi
echo "check.sh: crash-consistency torture passed" \
     "($kills/60 runs killed mid-store, $quarantined entries quarantined)"

# clang-tidy (repo-root .clang-tidy profile) over the analysis, machine,
# and VIR layers, using the ASan build's compile_commands.json. Optional:
# skipped when clang-tidy is not installed.
if command -v clang-tidy > /dev/null 2>&1; then
    clang-tidy -p "$build" --quiet \
        "$repo"/src/analysis/*.cpp "$repo"/src/machine/*.cpp \
        "$repo"/src/vir/*.cpp
    echo "check.sh: clang-tidy passed on src/analysis + src/machine + src/vir"
else
    echo "check.sh: clang-tidy not installed; skipping lint"
fi

# ASan and TSan cannot share a build; the threaded tests get their own.
if [[ "${1:-}" != "--fast" || ! -d "$build_tsan" ]]; then
    cmake --preset tsan -S "$repo"
fi
cmake --build "$build_tsan" -j "$jobs" \
      --target service_test resilience_test analysis_test \
               durability_test overload_test strategy_test daemon_test

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "$build_tsan" --output-on-failure \
      -R '^(service_test|resilience_test|analysis_test|durability_test|overload_test|strategy_test|daemon_test)$'

echo "check.sh: service + resilience + analysis + durability + overload" \
     "+ strategy + daemon tests passed under TSan"

# E-matching benchmark gate: run the matcher microbenchmarks from the
# default (non-sanitized, RelWithDebInfo) build so timings are
# representative, write BENCH_ematch.json (cold saturation + search wall
# time, naive and op-indexed — the before/after pair), and fail when an
# op-indexed benchmark regresses more than 20% against the checked-in
# baseline (bench/BENCH_ematch_baseline.json). The naive entries are
# recorded for the speedup ratio but not gated — they are the "before".
build_bench="$repo/build"
if [[ "${1:-}" != "--fast" || ! -d "$build_bench" ]]; then
    cmake --preset default -S "$repo"
fi
cmake --build "$build_bench" -j "$jobs" --target egraph_micro
bench_json="$build_bench/BENCH_ematch.json"
"$build_bench/bench/egraph_micro" \
    --benchmark_filter='bm_(saturation_cold|search_all_rules)_' \
    --benchmark_out="$bench_json" --benchmark_out_format=json \
    > /dev/null
baseline="$repo/bench/BENCH_ematch_baseline.json"
awk '
    $0 ~ /"name":/ { split($0, q, "\""); name = q[4] }
    $0 ~ /"real_time":/ {
        v = $0; sub(/.*"real_time": */, "", v); sub(/,.*/, "", v)
        if (FILENAME == ARGV[1]) { base[name] = v + 0 }
        else                     { cur[name] = v + 0 }
    }
    END {
        status = 0
        for (n in base) {
            if (n !~ /indexed/) { continue }
            if (!(n in cur)) {
                printf "check.sh: benchmark %s missing from run\n", n
                status = 1
                continue
            }
            if (cur[n] > base[n] * 1.20) {
                printf "check.sh: BENCH REGRESSION %s: %.3f vs baseline %.3f (+%d%%)\n", \
                    n, cur[n], base[n], int((cur[n] / base[n] - 1) * 100)
                status = 1
            } else {
                printf "check.sh: bench ok %s: %.3f (baseline %.3f)\n", \
                    n, cur[n], base[n]
            }
        }
        sat_n = cur["bm_saturation_cold_naive/4"]
        sat_i = cur["bm_saturation_cold_indexed/4"]
        if (sat_i > 0 && sat_n > 0) {
            printf "check.sh: cold-saturation speedup (naive/indexed): %.2fx\n", \
                sat_n / sat_i
            if (sat_n / sat_i < 1.5) {
                printf "check.sh: indexed e-matching lost its speedup\n"
                status = 1
            }
        }
        exit status
    }' "$baseline" "$bench_json"
echo "check.sh: e-matching benchmark gate passed ($bench_json)"

# Figure-6 strategy gate (DESIGN.md §5h): sweep kernel sizes with and
# without the explosive full-AC rules, monolithic saturation vs the
# built-in phased strategy, and write BENCH_fig6.json. The bench exits
# non-zero when the phased strategy regresses extracted cost on any
# size, or fails to reach a fixed point / goal stop (or a strictly
# better extraction) on a size where the monolithic run was truncated
# by its budget — the "break the timeout wall" claim, enforced.
cmake --build "$build_bench" -j "$jobs" --target fig6_timeout
fig6_json="$build_bench/BENCH_fig6.json"
"$build_bench/bench/fig6_timeout" --out "$fig6_json" > /dev/null
echo "check.sh: fig6 strategy gate passed ($fig6_json)"

# Overload soak gate (DESIGN.md §5g): 100k mixed hot/cold/poison
# requests from 4 client threads with per-request fault injection armed
# via DIOS_FAULT. The soak binary itself exits non-zero on any lost or
# duplicated response, any shed response missing its retry_after_ms
# hint, or any served artifact that is not byte-identical to a cold
# single-threaded compile — so `set -e` makes those hard failures.
# Fault sites are compile-phase ones: fault-armed requests bypass the
# caches by design, so cache.* sites would never fire here.
cmake --build "$build_bench" -j "$jobs" --target service_soak
svc_json="$build_bench/BENCH_service.json"
DIOS_FAULT="runner.iter:1:*,extract.build,lower.term,emit.machine:2" \
    "$build_bench/bench/service_soak" --requests 100000 --threads 4 \
    --jobs 2 --out "$svc_json" > /dev/null
echo "check.sh: service soak passed (100k requests, faults armed)"

# A second, deliberately overloaded pass (tiny queue, more clients than
# workers) must actually exercise load shedding — and still lose
# nothing. The shed count is asserted, so admission control cannot
# silently rot into either "shed everything" or "never shed".
overload_json="$build_bench/BENCH_service_overload.json"
DIOS_FAULT="runner.iter:1:*,extract.build" \
    "$build_bench/bench/service_soak" --requests 20000 --threads 8 \
    --jobs 1 --capacity 4 --watermark 2 --out "$overload_json" \
    > /dev/null
sheds=$(sed -n 's/^"shed": \([0-9]*\).*/\1/p' "$overload_json")
if [[ -z "$sheds" || "$sheds" -eq 0 ]]; then
    echo "check.sh: overloaded soak shed nothing — watermark dead?" >&2
    exit 1
fi
echo "check.sh: overloaded soak passed ($sheds requests shed, all" \
     "with retry hints)"

# p99 latency gate against the checked-in baseline: >20% regression of
# the mixed-workload soak fails the build.
svc_baseline="$repo/bench/BENCH_service_baseline.json"
base_p99=$(sed -n 's/^"p99_ms": \([0-9.]*\).*/\1/p' "$svc_baseline")
cur_p99=$(sed -n 's/^"p99_ms": \([0-9.]*\).*/\1/p' "$svc_json")
if [[ -z "$base_p99" || -z "$cur_p99" ]]; then
    echo "check.sh: missing p99_ms in soak output or baseline" >&2
    exit 1
fi
if ! awk -v c="$cur_p99" -v b="$base_p99" \
        'BEGIN { exit !(c <= b * 1.20) }'; then
    echo "check.sh: SOAK REGRESSION p99 ${cur_p99}ms vs baseline" \
         "${base_p99}ms (>20%)" >&2
    exit 1
fi
echo "check.sh: service soak gate passed" \
     "(p99 ${cur_p99}ms <= 1.2 x baseline ${base_p99}ms, $svc_json)"

# Daemon chaos gate (DESIGN.md §5j): one diosd child + 3 client
# processes pushing mixed hot/cold/poison traffic over the Unix-socket
# protocol while the harness SIGKILLs and restarts the daemon >=5 times
# mid-flight (including one extended dead window that exhausts client
# retry budgets). The binary itself exits non-zero on any lost or
# duplicated response, any artifact not byte-identical to a cold local
# compile, or an unreachable-daemon request that failed to complete via
# local fallback — `set -e` makes those hard failures. On top of that,
# assert the chaos actually happened: kills >= 5, shed > 0 (admission
# control fired over the wire), fallback > 0 (graceful degradation
# fired).
cmake --build "$build_bench" -j "$jobs" --target daemon_soak
daemon_json="$build_bench/BENCH_daemon.json"
"$build_bench/bench/daemon_soak" --out "$daemon_json" > /dev/null
d_kills=$(sed -n 's/^"kills": \([0-9]*\).*/\1/p' "$daemon_json")
d_shed=$(sed -n 's/^"shed": \([0-9]*\).*/\1/p' "$daemon_json")
d_fallback=$(sed -n 's/^"fallback_local": \([0-9]*\).*/\1/p' "$daemon_json")
if [[ -z "$d_kills" || "$d_kills" -lt 5 ]]; then
    echo "check.sh: daemon soak killed the daemon only ${d_kills:-0}/5" \
         "times — chaos schedule never landed" >&2
    exit 1
fi
if [[ -z "$d_shed" || "$d_shed" -eq 0 ]]; then
    echo "check.sh: daemon soak shed nothing over the wire" >&2
    exit 1
fi
if [[ -z "$d_fallback" || "$d_fallback" -eq 0 ]]; then
    echo "check.sh: daemon soak never fell back to local compilation" >&2
    exit 1
fi

# p99 latency gate for the remote path, same 20% rule as the service
# soak.
daemon_baseline="$repo/bench/BENCH_daemon_baseline.json"
base_p99=$(sed -n 's/^"p99_ms": \([0-9.]*\).*/\1/p' "$daemon_baseline")
cur_p99=$(sed -n 's/^"p99_ms": \([0-9.]*\).*/\1/p' "$daemon_json")
if [[ -z "$base_p99" || -z "$cur_p99" ]]; then
    echo "check.sh: missing p99_ms in daemon soak output or baseline" >&2
    exit 1
fi
if ! awk -v c="$cur_p99" -v b="$base_p99" \
        'BEGIN { exit !(c <= b * 1.20) }'; then
    echo "check.sh: DAEMON SOAK REGRESSION p99 ${cur_p99}ms vs baseline" \
         "${base_p99}ms (>20%)" >&2
    exit 1
fi
echo "check.sh: daemon chaos gate passed ($d_kills kills, $d_shed shed," \
     "$d_fallback local fallbacks, p99 ${cur_p99}ms <= 1.2 x baseline" \
     "${base_p99}ms, $daemon_json)"

# Native-differential gate (DESIGN.md §5k): emit every Table-1 kernel as
# multi-ISA C at widths 2/4/8/16, compile each unit with the host
# toolchain, execute natively, and check ULP-bounded agreement against
# the cycle simulator (<= 4 ULP) and the scalar reference interpreter
# (5e-3 relative). The binary exits non-zero on any native
# disagreement, so `set -e` makes that a hard failure. Unsupported leaf
# widths never need skipping: every emitted unit carries SSE2 / AVX2 /
# AVX-512 / NEON leaves plus a portable scalar core, each chunked
# widest-first with a scalar tail, so whatever ISA the host dispatch
# picks executes every width — a width wider than the host's vectors
# just runs as multiple narrower chunks. The per-case "isa" field
# records which leaf the runtime dispatch actually selected.
cmake --build "$build_bench" -j "$jobs" --target native_diff
native_json="$build_bench/BENCH_native.json"
"$build_bench/bench/native_diff" --out "$native_json" > /dev/null
host_isa=$(sed -n 's/.*"isa": "\([a-z0-9_]*\)".*/\1/p' "$native_json" \
    | head -n 1)
echo "check.sh: native differential passed (host ISA:" \
     "${host_isa:-unknown}, $native_json)"

# Speedup gate against the checked-in baseline: the geomean
# native-vs-scalar speedup must not regress more than 20%.
native_baseline="$repo/bench/BENCH_native_baseline.json"
base_g=$(sed -n 's/.*"geomean_speedup": \([0-9.]*\).*/\1/p' \
    "$native_baseline")
cur_g=$(sed -n 's/.*"geomean_speedup": \([0-9.]*\).*/\1/p' "$native_json")
if [[ -z "$base_g" || -z "$cur_g" ]]; then
    echo "check.sh: missing geomean_speedup in native output or baseline" >&2
    exit 1
fi
if ! awk -v c="$cur_g" -v b="$base_g" \
        'BEGIN { exit !(c >= b * 0.80) }'; then
    echo "check.sh: NATIVE REGRESSION geomean speedup ${cur_g}x vs" \
         "baseline ${base_g}x (>20%)" >&2
    exit 1
fi
echo "check.sh: native speedup gate passed" \
     "(geomean ${cur_g}x >= 0.8 x baseline ${base_g}x)"

# A quick ASan pass of the harness itself (one kernel, all widths,
# correctness only): the dlopen/dlsym loader, the memory-image
# round-trip, and the ULP comparator all run instrumented. The emitted
# kernel .so stays uninstrumented (plain host cc), which ASan tolerates
# in the dlopen direction.
"$build/bench/native_diff" --check-only --filter QProd \
    --out "$build/BENCH_native_asan.json" > /dev/null
echo "check.sh: native differential passed under ASan (QProd subset)"
