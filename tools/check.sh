#!/usr/bin/env bash
# Sanitizer gate: build the whole tree (library, tools, tests, benches)
# under ASan + UBSan and run the full test suite, including
# fuzz_compiler_test and resilience_test, with sanitizer reports
# promoted to hard failures. Then build the concurrency-sensitive
# subset (the compile service and the fault registry it leans on)
# under ThreadSanitizer and run service_test + resilience_test, so
# data races in the worker pool fail the gate too.
# Run from anywhere; ~5-10 minutes.
#
#   tools/check.sh            # ASan+UBSan + TSan gates
#   tools/check.sh --fast     # reuse existing build dirs without reconfigure
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-asan"
build_tsan="$repo/build-tsan"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${1:-}" != "--fast" || ! -d "$build" ]]; then
    cmake --preset asan -S "$repo"
fi
cmake --build "$build" -j "$jobs"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "check.sh: all tests passed under ASan+UBSan"

# Rule soundness: every registered rewrite must prove equivalent under
# the exact validator (non-zero exit on any unsound rule).
"$build/tools/dioscc" --lint-rules > /dev/null
echo "check.sh: rule soundness lint passed"

# clang-tidy (repo-root .clang-tidy profile) over the analysis and VIR
# layers, using the ASan build's compile_commands.json. Optional: skipped
# when clang-tidy is not installed.
if command -v clang-tidy > /dev/null 2>&1; then
    clang-tidy -p "$build" --quiet \
        "$repo"/src/analysis/*.cpp "$repo"/src/vir/*.cpp
    echo "check.sh: clang-tidy passed on src/analysis + src/vir"
else
    echo "check.sh: clang-tidy not installed; skipping lint"
fi

# ASan and TSan cannot share a build; the threaded tests get their own.
if [[ "${1:-}" != "--fast" || ! -d "$build_tsan" ]]; then
    cmake --preset tsan -S "$repo"
fi
cmake --build "$build_tsan" -j "$jobs" \
      --target service_test resilience_test analysis_test

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "$build_tsan" --output-on-failure \
      -R '^(service_test|resilience_test|analysis_test)$'

echo "check.sh: service + resilience + analysis tests passed under TSan"
