#!/usr/bin/env bash
# Sanitizer gate: build the whole tree (library, tools, tests, benches)
# under ASan + UBSan and run the full test suite, including
# fuzz_compiler_test and resilience_test, with sanitizer reports
# promoted to hard failures. Run from anywhere; ~5-10 minutes.
#
#   tools/check.sh            # ASan+UBSan build + full ctest
#   tools/check.sh --fast     # reuse an existing build-asan without reconfigure
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-asan"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${1:-}" != "--fast" || ! -d "$build" ]]; then
    cmake --preset asan -S "$repo"
fi
cmake --build "$build" -j "$jobs"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "check.sh: all tests passed under ASan+UBSan"
