/**
 * @file
 * dioscc — the Diospyros command-line compiler.
 *
 * Compiles a kernel written in the textual input language (see
 * src/scalar/parse.h) through the full pipeline and reports the result:
 *
 *   dioscc <kernel.ksp> [options]
 *
 * Options:
 *   --width N       target vector width (default 4)
 *   --iters N       saturation iteration budget (default 12)
 *   --nodes N       e-graph node limit (default 300000)
 *   --timeout S     saturation wall-clock budget in seconds (default 20;
 *                   fractions allowed, e.g. 0.5)
 *   --deadline S    wall-clock budget for the WHOLE compile (all phases
 *                   share one deadline; the final degradation rung is
 *                   exempt so a result is always produced)
 *   --memory BYTES  e-graph memory ceiling for saturation (proxy bytes)
 *   --no-vector     disable vector rewrite rules (§5.6 ablation)
 *   --ac            enable full associativity/commutativity (§3.3)
 *   --recip         target has a fast reciprocal (§6 extension)
 *   --validate      run exact translation validation
 *   --verify-ir     run the static-analysis gates (e-graph audit + VIR
 *                   verifier) inside the compile; always on in debug and
 *                   sanitizer builds
 *   --verify-machine
 *                   run the machine-code gates: structural verification
 *                   of the emitted program (M001-M007), the scheduler-
 *                   preservation proof (M008), and symbolic machine-level
 *                   translation validation of the scheduled code against
 *                   the spec (M009, with a concrete counterexample
 *                   witness on NOT-equivalent). The structural gates are
 *                   always on in debug and sanitizer builds; this flag
 *                   opts release builds in and additionally enables the
 *                   symbolic validation. With --json the verdict lands in
 *                   "machine_validation" / "machine_witness"
 *   --lint-rules    lint every registered rewrite rule for soundness
 *                   against the exact validator and exit (no kernel
 *                   required); non-zero exit if any rule is unsound
 *   --strategy S    saturation strategy: a built-in name ("default",
 *                   "phased") or a strategy file in the s-expression DSL
 *                   (src/strategy/parse.h). Phases, per-phase limits,
 *                   rule schedulers and sketch goals replace the single
 *                   monolithic saturation run; with --json the report
 *                   gains a per-phase "phases" array. A bad name/file
 *                   exits 2 with the S4xx diagnostics.
 *   --lint-strategies
 *                   check every built-in strategy (rule references
 *                   resolve against the registered rule set; canonical
 *                   rendering round-trips through the parser) and exit;
 *                   non-zero exit on any failure
 *   --strict        raw pipeline: fail outright instead of walking the
 *                   degradation ladder on errors
 *   --fault SPEC    arm a fault site, SPEC = site[:nth[:count|*]]
 *                   (also honoured from the DIOS_FAULT env var)
 *   --list-faults   print the fault-site catalog and exit
 *   --emit-c        print the generated C intrinsics
 *   --emit-native   print a host-compilable multi-ISA C kernel
 *                   (SSE/AVX2/AVX-512/NEON leaves + CPU dispatch; see
 *                   machine/emit_c.h)
 *   --emit-asm      print the scheduled DSP assembly
 *   --emit-spec     print the lifted specification
 *   --emit-dot FILE write the saturated e-graph as Graphviz (debugging)
 *   --json          print the compile report as a JSON object
 *   --run           run on random inputs and compare with the baselines
 *   --seed N        RNG seed for --run (default 1)
 *
 * Batch mode (the compile service):
 *   --batch FILE    compile every kernel listed in FILE (one path per
 *                   line; blank lines and '#' comments skipped) through
 *                   the concurrent compile service. With --json, prints
 *                   ONE JSON array with a per-kernel report. The exit
 *                   code is non-zero only for user errors (bad manifest,
 *                   unparsable kernel, invalid options) — degraded or
 *                   failed compiles are reported in-band.
 *   --jobs N        worker threads for --batch (default 1)
 *   --cache-dir D   persistent compile cache directory (also honoured in
 *                   single-kernel mode: a warm run is served from cache)
 *   --cache-disk-budget BYTES
 *                   on-disk cache size budget: the recovery scan evicts
 *                   oldest entries (mtime LRU) past this many bytes
 *                   (0 = unlimited, the default)
 *   --io-retries N  bounded retries (deterministic backoff) for
 *                   transient cache-store I/O failures (default 2)
 *
 * Admission control (service paths: --batch, or --cache-dir):
 *   --priority P    admission class: interactive | batch | background
 *                   (default: interactive for single kernels, batch for
 *                   --batch). Workers drain interactive first; past the
 *                   shed watermark only interactive is admitted.
 *   --submit-timeout-ms N
 *                   wait at most N ms for queue space, then shed with a
 *                   structured Overloaded result (0 = shed immediately;
 *                   default: block indefinitely)
 *   --neg-cache-ttl-s S
 *                   remember deterministic failures for S seconds and
 *                   serve them without recompiling (0 disables the
 *                   failure memory and circuit breaker; default 300)
 *   --shed-watermark N
 *                   once N jobs are queued, shed batch/background
 *                   submits immediately (0 = only the hard queue
 *                   capacity sheds, the default)
 *
 *   Shed or breaker-rejected kernels are reported in-band: the batch
 *   JSON carries "cache":"shed"/"breaker-open"/"negative-hit", the
 *   retry hint in "retry_after_ms", and per-kernel "queue_wait_ms".
 *
 * Daemon mode (DESIGN.md §5j):
 *   --serve SOCK    run as a compile daemon on Unix socket SOCK (the
 *                   in-tool equivalent of the standalone diosd binary;
 *                   combines with --jobs/--cache-dir/admission flags).
 *                   SIGINT/SIGTERM drain gracefully and print the final
 *                   metrics document
 *   --remote SOCK   compile via a daemon at SOCK instead of in-process
 *                   (single-kernel and --batch). Retries under bounded
 *                   exponential backoff with jitter, honours shed
 *                   retry_after_ms hints, and replays torn requests
 *                   against the daemon's dedup table. If the daemon
 *                   stays unreachable, falls back to a local in-process
 *                   compile ("cache":"local-fallback" in --json) — the
 *                   bytes of a successful result never depend on the
 *                   transport
 *   --read-deadline-s S   (--serve) drop connections idle or mid-frame
 *                   for S seconds (default 30)
 *   --drain-deadline-s S  (--serve) escalate a graceful drain to shed
 *                   after S seconds (default 10)
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "analysis/diagnostics.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "analysis/lint_rules.h"
#include "analysis/verify_machine.h"
#include "compiler/driver.h"
#include "machine/emit_c.h"
#include "service/compile_service.h"
#include "egraph/runner.h"
#include "rules/rules.h"
#include "scalar/lower.h"
#include "scalar/parse.h"
#include "strategy/parse.h"
#include "strategy/strategy.h"
#include "support/faults.h"
#include "support/numeric.h"
#include "support/rng.h"

using namespace diospyros;

namespace {

struct CliOptions {
    std::string path;
    CompilerOptions compiler;
    bool emit_c = false;
    bool emit_native = false;
    bool emit_asm = false;
    bool emit_spec = false;
    bool json = false;
    bool run = false;
    bool strict = false;
    bool lint_rules = false;
    bool lint_strategies = false;
    std::string dot_path;
    std::uint64_t seed = 1;
    int jobs = 1;
    std::string cache_dir;
    std::uintmax_t cache_disk_budget = 0;
    std::string batch_path;
    /** Admission-control knobs (service paths only). */
    service::Priority priority = service::Priority::kBatch;
    bool priority_set = false;
    double submit_timeout_seconds = -1.0;  ///< < 0: block (legacy)
    double neg_cache_ttl_seconds = 300.0;
    std::size_t shed_watermark = 0;
    /** Remote mode: compile via a diosd daemon at this socket. */
    std::string remote_socket;
    /** Serve mode: run a diosd daemon on this socket until a signal. */
    std::string serve_socket;
    double read_deadline_seconds = 30.0;
    double drain_deadline_seconds = 10.0;
};

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <kernel.ksp> [--width N] [--iters N] "
                 "[--nodes N] [--timeout S] [--deadline S] [--memory B] "
                 "[--no-vector] [--ac] [--recip] [--validate] "
                 "[--verify-ir] [--verify-machine] [--lint-rules] "
                 "[--strategy NAME|FILE] "
                 "[--lint-strategies] [--strict] "
                 "[--fault SPEC] [--list-faults] [--emit-c] "
                 "[--emit-native] [--emit-asm] "
                 "[--emit-spec] [--emit-dot FILE] [--json] [--run] "
                 "[--seed N] [--batch FILE] [--jobs N] [--cache-dir D] "
                 "[--cache-disk-budget BYTES] [--io-retries N] "
                 "[--priority interactive|batch|background] "
                 "[--submit-timeout-ms N] [--neg-cache-ttl-s S] "
                 "[--shed-watermark N] [--remote SOCK] [--serve SOCK] "
                 "[--read-deadline-s S] [--drain-deadline-s S]\n",
                 argv0);
    std::exit(2);
}

CliOptions
parse_cli(int argc, char** argv)
{
    CliOptions cli;
    cli.compiler.limits = RunnerLimits{.node_limit = 300'000,
                                       .iter_limit = 12,
                                       .time_limit_seconds = 20.0};
    // Strict numeric parsing: the whole token must parse and limits must
    // be positive ("--timeout 0.5" works; "--iters abc" is rejected
    // instead of silently becoming 0).
    auto next_arg = [&](int& i) -> std::string {
        if (i + 1 >= argc) {
            usage(argv[0]);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--width") {
            cli.compiler.target.vector_width = static_cast<int>(
                require_positive_integer(arg, next_arg(i)));
        } else if (arg == "--iters") {
            cli.compiler.limits.iter_limit = static_cast<int>(
                require_positive_integer(arg, next_arg(i)));
        } else if (arg == "--nodes") {
            cli.compiler.limits.node_limit = static_cast<std::size_t>(
                require_positive_integer(arg, next_arg(i)));
        } else if (arg == "--timeout") {
            cli.compiler.limits.time_limit_seconds =
                require_positive_number(arg, next_arg(i));
        } else if (arg == "--deadline") {
            cli.compiler.deadline_seconds =
                require_positive_number(arg, next_arg(i));
        } else if (arg == "--memory") {
            cli.compiler.limits.memory_limit_bytes =
                static_cast<std::size_t>(
                    require_positive_integer(arg, next_arg(i)));
        } else if (arg == "--no-vector") {
            cli.compiler.rules.enable_vector_rules = false;
        } else if (arg == "--ac") {
            cli.compiler.rules.full_ac = true;
        } else if (arg == "--recip") {
            cli.compiler.target.has_reciprocal = true;
        } else if (arg == "--validate") {
            cli.compiler.validate = true;
            cli.compiler.random_check = true;
        } else if (arg == "--verify-ir") {
            cli.compiler.verify_ir = true;
        } else if (arg == "--verify-machine") {
            cli.compiler.verify_machine = true;
        } else if (arg == "--lint-rules") {
            cli.lint_rules = true;
        } else if (arg == "--strategy") {
            const std::string ref = next_arg(i);
            analysis::DiagEngine diags;
            auto strat = strategy::load_strategy(ref, diags);
            if (!strat) {
                // Structured UserError, same convention as every other
                // bad flag value: "dioscc: error: ..." and exit 2.
                throw UserError("--strategy " + ref + ":\n" +
                                diags.render_text());
            }
            cli.compiler.strategy = std::move(*strat);
        } else if (arg == "--lint-strategies") {
            cli.lint_strategies = true;
        } else if (arg == "--strict") {
            cli.strict = true;
        } else if (arg == "--fault") {
            cli.compiler.fault_specs.push_back(next_arg(i));
        } else if (arg == "--list-faults") {
            for (const std::string& site : faults::known_sites()) {
                std::printf("%s\n", site.c_str());
            }
            std::exit(0);
        } else if (arg == "--emit-c") {
            cli.emit_c = true;
        } else if (arg == "--emit-native") {
            cli.emit_native = true;
        } else if (arg == "--emit-asm") {
            cli.emit_asm = true;
        } else if (arg == "--emit-spec") {
            cli.emit_spec = true;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--emit-dot") {
            cli.dot_path = next_arg(i);
        } else if (arg == "--run") {
            cli.run = true;
        } else if (arg == "--jobs") {
            cli.jobs = static_cast<int>(
                require_positive_integer(arg, next_arg(i)));
        } else if (arg == "--cache-dir") {
            cli.cache_dir = next_arg(i);
        } else if (arg == "--cache-disk-budget") {
            cli.cache_disk_budget = static_cast<std::uintmax_t>(
                require_nonnegative_integer(arg, next_arg(i)));
        } else if (arg == "--io-retries") {
            cli.compiler.io_retries = static_cast<int>(
                require_nonnegative_integer(arg, next_arg(i)));
        } else if (arg == "--batch") {
            cli.batch_path = next_arg(i);
        } else if (arg == "--priority") {
            cli.priority = service::parse_priority(next_arg(i));
            cli.priority_set = true;
        } else if (arg == "--submit-timeout-ms") {
            cli.submit_timeout_seconds =
                static_cast<double>(
                    require_nonnegative_integer(arg, next_arg(i))) /
                1000.0;
        } else if (arg == "--neg-cache-ttl-s") {
            cli.neg_cache_ttl_seconds =
                require_nonnegative_number(arg, next_arg(i));
        } else if (arg == "--shed-watermark") {
            cli.shed_watermark = static_cast<std::size_t>(
                require_nonnegative_integer(arg, next_arg(i)));
        } else if (arg == "--remote") {
            cli.remote_socket = next_arg(i);
        } else if (arg == "--serve") {
            cli.serve_socket = next_arg(i);
        } else if (arg == "--read-deadline-s") {
            cli.read_deadline_seconds =
                require_positive_number(arg, next_arg(i));
        } else if (arg == "--drain-deadline-s") {
            cli.drain_deadline_seconds =
                require_nonnegative_number(arg, next_arg(i));
        } else if (arg == "--seed") {
            cli.seed = static_cast<std::uint64_t>(
                require_nonnegative_integer(arg, next_arg(i)));
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else if (cli.path.empty()) {
            cli.path = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (cli.path.empty() && cli.batch_path.empty() && !cli.lint_rules &&
        !cli.lint_strategies) {
        usage(argv[0]);
    }
    return cli;
}

scalar::BufferMap
random_inputs(const scalar::Kernel& kernel, std::uint64_t seed)
{
    Rng rng(seed);
    scalar::BufferMap out;
    for (const auto& decl :
         kernel.arrays_with_role(scalar::ArrayRole::kInput)) {
        std::vector<float> data(static_cast<std::size_t>(
            scalar::array_length(kernel, decl)));
        for (float& v : data) {
            v = rng.uniform_float(-2.0f, 2.0f);
        }
        out.emplace(decl.name.str(), std::move(data));
    }
    return out;
}

/** JSON-escapes a string (quotes, backslashes, control characters). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * One per-kernel report object (no trailing newline): the single-kernel
 * --json payload, and one element of the --batch --json array.
 */
void
print_json_object(const std::string& kernel_name, const CompileReport& r,
                  const char* cache, double queue_wait_ms = 0.0)
{
    std::printf(
        "{\"kernel\":\"%s\",\"ok\":true,\"cache\":\"%s\","
        "\"queue_wait_ms\":%.3f,"
        "\"total_seconds\":%.6f,"
        "\"saturation_seconds\":%.6f,\"egraph_nodes\":%zu,"
        "\"egraph_classes\":%zu,\"iterations\":%zu,"
        "\"stop\":\"%s\",\"extracted_cost\":%.2f,"
        "\"spec_elements\":%zu,\"memory_proxy_bytes\":%zu,"
        "\"lvn_removed\":%zu,\"fallback_level\":%d,"
        "\"fallback\":\"%s\",\"error\":\"%s\","
        "\"validation\":\"%s\",\"random_check_passed\":%s,"
        "\"machine_validation\":\"%s\",\"machine_validated\":%s,"
        "\"machine_witness\":\"%s\",\"attempts\":[",
        json_escape(kernel_name).c_str(), cache, queue_wait_ms,
        r.total_seconds,
        r.saturation_seconds, r.egraph_nodes, r.egraph_classes,
        r.runner_iterations, stop_reason_name(r.stop_reason),
        r.extracted_cost, r.spec_elements, r.memory_proxy_bytes,
        r.lvn.value_numbered + r.lvn.dead_removed, r.fallback_level,
        fallback_level_name(r.fallback_level),
        json_escape(r.error).c_str(), verdict_name(r.validation),
        r.random_check_passed ? "true" : "false",
        verdict_name(r.machine_validation),
        r.machine_validated ? "true" : "false",
        json_escape(r.machine_witness).c_str());
    for (std::size_t i = 0; i < r.attempts.size(); ++i) {
        const AttemptDiagnostic& a = r.attempts[i];
        std::printf("%s{\"level\":%d,\"rung\":\"%s\",\"seconds\":%.6f,"
                    "\"error\":\"%s\"}",
                    i == 0 ? "" : ",", a.level,
                    fallback_level_name(a.level), a.seconds,
                    json_escape(a.error).c_str());
    }
    // Per-rule e-matching profile (rule-set order), plus the totals.
    std::size_t ematch_matches = 0;
    double ematch_search = 0.0;
    double ematch_apply = 0.0;
    std::printf("],\"rule_stats\":[");
    for (std::size_t i = 0; i < r.rule_stats.size(); ++i) {
        const RuleStats& s = r.rule_stats[i];
        ematch_matches += s.matches;
        ematch_search += s.search_seconds;
        ematch_apply += s.apply_seconds;
        std::printf("%s{\"rule\":\"%s\",\"matches\":%zu,"
                    "\"applications\":%zu,\"search_seconds\":%.6f,"
                    "\"apply_seconds\":%.6f,\"times_banned\":%d,"
                    "\"banned_until\":%d}",
                    i == 0 ? "" : ",", json_escape(s.name).c_str(),
                    s.matches, s.applications, s.search_seconds,
                    s.apply_seconds, s.times_banned, s.banned_until);
    }
    std::printf("],\"ematch_matches\":%zu,\"ematch_search_seconds\":%.6f,"
                "\"ematch_apply_seconds\":%.6f",
                ematch_matches, ematch_search, ematch_apply);
    // Strategy runs: the schedule's identity and per-phase telemetry.
    std::printf(",\"strategy\":\"%s\",\"goal_satisfied\":%s,\"phases\":[",
                json_escape(r.strategy_name).c_str(),
                r.strategy_goal_satisfied ? "true" : "false");
    for (std::size_t i = 0; i < r.strategy_phases.size(); ++i) {
        const strategy::PhaseReport& p = r.strategy_phases[i];
        std::size_t matches = 0;
        std::size_t applications = 0;
        for (const RuleStats& s : p.runner.rule_stats) {
            matches += s.matches;
            applications += s.applications;
        }
        std::printf(
            "%s{\"phase\":\"%s\",\"runs\":%d,\"skipped\":%s,"
            "\"stop\":\"%s\",\"iterations\":%zu,\"nodes\":%zu,"
            "\"classes\":%zu,\"matches\":%zu,\"applications\":%zu,"
            "\"sketch_checked\":%s,\"sketch_satisfied\":%s,"
            "\"seconds\":%.6f,\"rule_stats\":[",
            i == 0 ? "" : ",", json_escape(p.name).c_str(), p.runs,
            p.skipped ? "true" : "false",
            p.skipped ? "skipped" : stop_reason_name(p.runner.stop_reason),
            p.runner.iterations.size(), p.runner.final_nodes,
            p.runner.final_classes, matches, applications,
            p.sketch_checked ? "true" : "false",
            p.sketch_satisfied ? "true" : "false", p.seconds);
        for (std::size_t j = 0; j < p.runner.rule_stats.size(); ++j) {
            const RuleStats& s = p.runner.rule_stats[j];
            std::printf("%s{\"rule\":\"%s\",\"matches\":%zu,"
                        "\"applications\":%zu,\"times_banned\":%d,"
                        "\"banned_until\":%d}",
                        j == 0 ? "" : ",", json_escape(s.name).c_str(),
                        s.matches, s.applications, s.times_banned,
                        s.banned_until);
        }
        std::printf("]}");
    }
    std::printf("]}");
}

/**
 * Report object for a kernel that produced no result at all: parse
 * failures, compile failures, and admission rejections alike. Shed and
 * breaker-open rejections carry their structured retry hint.
 */
void
print_json_failure(const std::string& kernel_name, const std::string& error,
                   bool user_error, const char* cache,
                   double queue_wait_ms = 0.0,
                   std::uint64_t retry_after_ms = 0)
{
    std::printf("{\"kernel\":\"%s\",\"ok\":false,\"cache\":\"%s\","
                "\"queue_wait_ms\":%.3f,\"retry_after_ms\":%llu,"
                "\"user_error\":%s,\"fallback_level\":-1,\"error\":\"%s\"}",
                json_escape(kernel_name).c_str(), cache, queue_wait_ms,
                static_cast<unsigned long long>(retry_after_ms),
                user_error ? "true" : "false", json_escape(error).c_str());
}

/** Reads a --batch manifest: one kernel path per line, '#' comments. */
std::vector<std::string>
read_manifest(const std::string& path)
{
    std::ifstream in(path);
    DIOS_CHECK(in.good(), "cannot open batch manifest '" + path + "'");
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) {
        const auto begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos || line[begin] == '#') {
            continue;
        }
        const auto end = line.find_last_not_of(" \t\r");
        out.push_back(line.substr(begin, end - begin + 1));
    }
    DIOS_CHECK(!out.empty(),
               "batch manifest '" + path + "' lists no kernels");
    return out;
}

// ---------------------------------------------------------------------------
// Signal handling (--batch / --serve): a Ctrl-C or SIGTERM must drain
// the service and still flush ONE well-formed --json document.
// ---------------------------------------------------------------------------

std::atomic<bool> g_interrupted{false};

void
handle_stop_signal(int)
{
    g_interrupted.store(true);
}

void
install_stop_handlers()
{
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

/** Whole-file read (the raw kernel text shipped to a remote daemon). */
std::string
slurp_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    DIOS_CHECK(in.good(), "cannot open kernel file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Client-side counters rendered as a ServiceMetrics JSON document. */
std::string
remote_metrics_json(const daemon::ClientCounters& counters)
{
    service::ServiceMetrics m;
    m.remote_requests = counters.remote_requests;
    m.remote_retries = counters.remote_retries;
    m.remote_fallback_local = counters.remote_fallback_local;
    return m.to_json();
}

/**
 * --batch --remote driver: every manifest kernel through one diosd
 * connection, falling back to local in-process compilation for any
 * request the daemon could not serve. Same output contract as the
 * local batch driver.
 */
int
run_batch_remote(const CliOptions& cli)
{
    install_stop_handlers();
    std::FILE* info = cli.json ? stderr : stdout;
    const std::vector<std::string> paths = read_manifest(cli.batch_path);

    daemon::RemoteOptions ropts;
    ropts.socket_path = cli.remote_socket;
    ropts.jitter_seed = cli.seed;
    daemon::RemoteClient client(ropts);

    bool any_user_error = false;
    if (cli.json) {
        std::printf("[");
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (cli.json && i > 0) {
            std::printf(",");
        }
        if (g_interrupted.load()) {
            // Flush the remainder as structured interruptions; the
            // array still closes and parses.
            if (cli.json) {
                print_json_failure(paths[i], "interrupted by signal",
                                   /*user_error=*/false, "none");
            }
            std::fprintf(stderr, "dioscc: interrupted: %s skipped\n",
                         paths[i].c_str());
            continue;
        }
        std::string name = paths[i];
        try {
            const scalar::Kernel kernel =
                scalar::parse_kernel_file(paths[i]);
            name = kernel.name;
            daemon::CompileRequest req;
            req.kernel_name = kernel.name;
            req.kernel_text = slurp_file(paths[i]);
            req.options = cli.compiler;
            req.priority = cli.priority_set ? cli.priority
                                            : service::Priority::kBatch;
            req.submit_timeout_seconds = cli.submit_timeout_seconds;
            const std::optional<daemon::CompileResponse> resp =
                client.compile(req);
            if (resp && resp->status == daemon::ResponseStatus::kOk) {
                const CompiledKernel compiled = service::compiled_from_entry(
                    kernel, *resp->entry);
                std::fprintf(info, "; [remote] %s\n",
                             report_row(name, compiled.report).c_str());
                if (cli.json) {
                    print_json_object(name, compiled.report, "remote");
                }
            } else if (resp) {
                any_user_error = any_user_error ||
                                 resp->failure_class == FailureClass::kUser;
                std::fprintf(stderr, "dioscc: error: %s: %s\n",
                             name.c_str(), resp->error.c_str());
                if (cli.json) {
                    print_json_failure(
                        name, resp->error,
                        resp->failure_class == FailureClass::kUser,
                        "remote", 0.0, resp->retry_after_ms);
                }
            } else {
                // Daemon unreachable (or kept shedding): local fallback.
                // Same pipeline, same bytes — only the worker moved.
                const CompileResult result =
                    compile_kernel_resilient(kernel, cli.compiler);
                if (result.ok) {
                    std::fprintf(
                        info, "; [local-fallback] %s\n",
                        report_row(name, result.report()).c_str());
                    if (cli.json) {
                        print_json_object(name, result.report(),
                                          "local-fallback");
                    }
                } else {
                    any_user_error = any_user_error || result.user_error;
                    std::fprintf(stderr, "dioscc: error: %s: %s\n",
                                 name.c_str(), result.error.c_str());
                    if (cli.json) {
                        print_json_failure(name, result.error,
                                           result.user_error,
                                           "local-fallback");
                    }
                }
            }
        } catch (const UserError& e) {
            any_user_error = true;
            std::fprintf(stderr, "dioscc: error: %s: %s\n", name.c_str(),
                         e.what());
            if (cli.json) {
                print_json_failure(name, e.what(), /*user_error=*/true,
                                   "none");
            }
        }
    }
    if (cli.json) {
        std::printf("]\n");
    }
    std::fprintf(info, "; remote metrics: %s\n",
                 remote_metrics_json(client.counters()).c_str());
    return any_user_error ? 2 : 0;
}

/**
 * --serve driver: run a diosd daemon in-process until SIGINT/SIGTERM,
 * then drain gracefully and flush one final metrics document.
 */
int
run_serve(const CliOptions& cli)
{
    DIOS_CHECK(cli.path.empty() && cli.batch_path.empty() &&
                   cli.remote_socket.empty() && !cli.strict && !cli.run,
               "--serve combines only with --json, --jobs, --cache-dir, "
               "--cache-disk-budget, --shed-watermark, "
               "--neg-cache-ttl-s, --read-deadline-s, and "
               "--drain-deadline-s");
    daemon::DaemonOptions dopts;
    dopts.socket_path = cli.serve_socket;
    dopts.service.jobs = cli.jobs;
    dopts.service.cache_dir = cli.cache_dir;
    dopts.service.disk_budget_bytes = cli.cache_disk_budget;
    dopts.service.negative_ttl_seconds = cli.neg_cache_ttl_seconds;
    dopts.service.shed_watermark = cli.shed_watermark;
    dopts.read_deadline_seconds = cli.read_deadline_seconds;
    dopts.drain_deadline_seconds = cli.drain_deadline_seconds;

    daemon::Daemon daemon(dopts);
    daemon.start();
    install_stop_handlers();
    std::fprintf(stderr, "; dioscc: serving on %s (pid %d, %d jobs)\n",
                 cli.serve_socket.c_str(), ::getpid(), cli.jobs);
    while (!g_interrupted.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "; dioscc: signal received, draining\n");
    daemon.shutdown(service::DrainMode::kFinish);
    if (cli.json) {
        std::printf("%s\n", daemon.status_json().c_str());
    } else {
        std::printf("; daemon metrics: %s\n",
                    daemon.status_json().c_str());
    }
    return 0;
}

/**
 * --batch driver: every manifest kernel through one CompileService.
 * Returns non-zero only when some kernel failed with a *user* error.
 */
int
run_batch(const CliOptions& cli)
{
    DIOS_CHECK(!cli.strict && !cli.run && !cli.emit_c &&
                   !cli.emit_native && !cli.emit_asm && !cli.emit_spec &&
                   cli.dot_path.empty() && cli.path.empty(),
               "--batch combines only with --json, --jobs, --cache-dir, "
               "--cache-disk-budget, and compiler options");

    install_stop_handlers();
    std::FILE* info = cli.json ? stderr : stdout;
    const std::vector<std::string> paths = read_manifest(cli.batch_path);

    service::CompileService::Options sopts;
    sopts.jobs = cli.jobs;
    sopts.cache_dir = cli.cache_dir;
    sopts.disk_budget_bytes = cli.cache_disk_budget;
    sopts.queue_capacity = paths.size() + 1;  // submit never blocks here
    sopts.negative_ttl_seconds = cli.neg_cache_ttl_seconds;
    sopts.shed_watermark = cli.shed_watermark;
    service::CompileService svc(sopts);

    service::SubmitOptions subopts;
    subopts.priority =
        cli.priority_set ? cli.priority : service::Priority::kBatch;
    subopts.submit_timeout_seconds = cli.submit_timeout_seconds;

    struct Item {
        std::string path;
        std::string name;
        service::Ticket ticket;
        bool submitted = false;
        std::string parse_error;
    };
    std::vector<Item> items;
    items.reserve(paths.size());
    for (const std::string& path : paths) {
        Item item;
        item.path = path;
        try {
            const scalar::Kernel kernel = scalar::parse_kernel_file(path);
            item.name = kernel.name;
            item.ticket = svc.submit(kernel, cli.compiler, subopts);
            item.submitted = true;
        } catch (const UserError& e) {
            item.name = path;
            item.parse_error = e.what();
        }
        items.push_back(std::move(item));
    }

    bool any_user_error = false;
    bool drained = false;
    if (cli.json) {
        std::printf("[");
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        Item& item = items[i];
        if (cli.json && i > 0) {
            std::printf(",");
        }
        if (!item.submitted) {
            any_user_error = true;
            std::fprintf(stderr, "dioscc: error: %s: %s\n",
                         item.path.c_str(), item.parse_error.c_str());
            if (cli.json) {
                print_json_failure(item.name, item.parse_error,
                                   /*user_error=*/true, "none");
            }
            continue;
        }
        // Poll instead of blocking so a SIGINT/SIGTERM mid-batch sheds
        // the queue and every remaining ticket resolves with a
        // structured Overloaded result — the JSON array always closes.
        while (!drained) {
            if (g_interrupted.load()) {
                std::fprintf(stderr,
                             "dioscc: interrupted: shedding queued "
                             "kernels\n");
                svc.drain(service::DrainMode::kShed);
                drained = true;
                break;
            }
            if (item.ticket.future.wait_for(
                    std::chrono::milliseconds(100)) ==
                std::future_status::ready) {
                break;
            }
        }
        const CompileResult& result = item.ticket.get();
        const char* cache =
            service::cache_outcome_json_name(item.ticket.outcome());
        const double wait_ms = item.ticket.queue_wait_seconds() * 1000.0;
        if (result.ok) {
            std::fprintf(info, "; [%s] %s\n", cache,
                         report_row(item.name, result.report()).c_str());
            if (cli.json) {
                print_json_object(item.name, result.report(), cache,
                                  wait_ms);
            }
        } else {
            any_user_error = any_user_error || result.user_error;
            std::fprintf(stderr, "dioscc: error: %s: %s\n",
                         item.name.c_str(), result.error.c_str());
            if (cli.json) {
                print_json_failure(item.name, result.error,
                                   result.user_error, cache, wait_ms,
                                   item.ticket.retry_after_ms());
            }
        }
    }
    if (cli.json) {
        std::printf("]\n");
    }
    std::fprintf(info, "; service metrics: %s\n",
                 svc.metrics().to_json().c_str());
    return any_user_error ? 2 : 0;
}

/**
 * The maximal rule configuration at the given width: every optional rule
 * family on, so the linter covers the whole inventory in one pass.
 */
RuleConfig
maximal_rule_config(int width)
{
    RuleConfig config(width);
    config.enable_scalar_rules = true;
    config.enable_vector_rules = true;
    config.full_ac = true;
    config.target_has_recip = true;
    return config;
}

/**
 * --lint-rules driver: prove every registered rewrite rule sound at the
 * CLI's vector width. Returns non-zero if any rule is unsound.
 */
int
run_lint_rules(const CliOptions& cli)
{
    const RuleConfig config =
        maximal_rule_config(cli.compiler.target.vector_width);
    const std::vector<analysis::RuleLintResult> results =
        analysis::lint_rules(config);
    for (const analysis::RuleLintResult& r : results) {
        const char* status = "sound";
        if (r.verdict == Verdict::kNotEquivalent) {
            status = "UNSOUND";
        } else if (!r.exercised) {
            status = "unexercised";
        } else if (r.random_checked) {
            status = "sound (random)";
        }
        std::printf("%-20s %s%s%s\n", r.rule.c_str(), status,
                    r.detail.empty() ? "" : ": ", r.detail.c_str());
    }
    analysis::DiagEngine diags;
    const bool sound = analysis::lint_to_diags(results, diags);
    if (diags.error_count() > 0 || diags.warning_count() > 0) {
        std::fprintf(stderr, "%s", diags.render_text().c_str());
    }
    std::printf("; linted %zu rules at width %d: %s\n", results.size(),
                config.vector_width, sound ? "all sound" : "UNSOUND");
    return sound ? 0 : 1;
}

/**
 * --lint-strategies driver: every named built-in strategy must (a)
 * resolve all its rule references against the default rule set at the
 * CLI's vector width, and (b) round-trip through its canonical DSL
 * rendering. Returns non-zero on any failure.
 */
int
run_lint_strategies(const CliOptions& cli)
{
    RuleConfig config(cli.compiler.target.vector_width);
    const std::vector<Rewrite> rules = build_rules(config);

    bool ok = true;
    for (const std::string& name : strategy::builtin_strategy_names()) {
        const auto strat = strategy::builtin_strategy(name);
        std::string problems;

        analysis::DiagEngine resolve_diags;
        strategy::resolve_phase_rules(*strat, rules, resolve_diags);
        if (resolve_diags.has_errors()) {
            problems += resolve_diags.render_text();
        }

        analysis::DiagEngine parse_diags;
        const auto reparsed =
            strategy::parse_strategy(strat->to_string(), parse_diags);
        if (!reparsed) {
            problems += "canonical rendering does not parse:\n" +
                        parse_diags.render_text();
        } else if (!(*reparsed == *strat)) {
            problems +=
                "canonical rendering does not round-trip to an equal "
                "strategy\n";
        }

        if (problems.empty()) {
            std::printf("%-12s ok (%zu phases%s)\n", name.c_str(),
                        strat->phases.size(),
                        strat->goal ? ", goal" : "");
        } else {
            ok = false;
            std::printf("%-12s FAILED\n%s", name.c_str(),
                        problems.c_str());
        }
    }
    std::printf("; linted %zu built-in strategies at width %d: %s\n",
                strategy::builtin_strategy_names().size(),
                config.vector_width, ok ? "all ok" : "FAILED");
    return ok ? 0 : 1;
}

/**
 * Debug-build startup self-check: every named built-in strategy must
 * reference only registered rules, so a rule rename cannot silently
 * strand a shipped schedule. Opt out: DIOS_NO_STRATEGY_LINT=1.
 */
void
startup_strategy_lint(int width)
{
#ifndef NDEBUG
    if (std::getenv("DIOS_NO_STRATEGY_LINT") != nullptr) {
        return;
    }
    RuleConfig config(width);
    const std::vector<Rewrite> rules = build_rules(config);
    for (const std::string& name : strategy::builtin_strategy_names()) {
        analysis::DiagEngine diags;
        strategy::resolve_phase_rules(*strategy::builtin_strategy(name),
                                      rules, diags);
        if (diags.has_errors()) {
            std::fprintf(
                stderr,
                "dioscc: strategy self-check failed for '%s':\n%s",
                name.c_str(), diags.render_text().c_str());
            std::exit(1);
        }
    }
#else
    (void)width;
#endif
}

/**
 * Debug-build startup self-check: the machine verifier must accept a
 * known-good program and catch planted bugs (bad shuffle lane, reordered
 * dependent pair), so a broken gate cannot silently wave miscompiles
 * through. Opt out: DIOS_NO_MACHINE_LINT=1.
 */
void
startup_machine_lint()
{
#ifndef NDEBUG
    if (std::getenv("DIOS_NO_MACHINE_LINT") != nullptr) {
        return;
    }
    const std::string problem = analysis::machine_verifier_self_check();
    if (!problem.empty()) {
        std::fprintf(stderr,
                     "dioscc: machine verifier self-check failed: %s\n",
                     problem.c_str());
        std::exit(1);
    }
#endif
}

/**
 * Debug-build startup self-check: lint the full rule inventory before
 * compiling anything, so an unsound rewrite is caught at the front door
 * rather than as a miscompiled kernel. Opt out: DIOS_NO_RULE_LINT=1.
 */
void
startup_rule_lint(int width)
{
#ifndef NDEBUG
    if (std::getenv("DIOS_NO_RULE_LINT") != nullptr) {
        return;
    }
    analysis::DiagEngine diags;
    if (!analysis::lint_to_diags(
            analysis::lint_rules(maximal_rule_config(width)), diags)) {
        std::fprintf(stderr,
                     "dioscc: rule soundness self-check failed:\n%s",
                     diags.render_text().c_str());
        std::exit(1);
    }
#else
    (void)width;
#endif
}

}  // namespace

int
main(int argc, char** argv)
try {
    CliOptions cli = parse_cli(argc, argv);
    faults::arm_from_env();
    if (cli.lint_rules) {
        return run_lint_rules(cli);
    }
    if (cli.lint_strategies) {
        return run_lint_strategies(cli);
    }
    startup_rule_lint(cli.compiler.target.vector_width);
    startup_strategy_lint(cli.compiler.target.vector_width);
    startup_machine_lint();
    if (!cli.serve_socket.empty()) {
        return run_serve(cli);
    }
    if (!cli.batch_path.empty()) {
        return cli.remote_socket.empty() ? run_batch(cli)
                                         : run_batch_remote(cli);
    }
    const scalar::Kernel kernel = scalar::parse_kernel_file(cli.path);

    // With --json, stdout must stay machine-parseable; with
    // --emit-native it must stay host-compilable (the ';' commentary
    // is not C). Route the commentary to stderr in both cases.
    std::FILE* info = (cli.json || cli.emit_native) ? stderr : stdout;

    std::fprintf(info, "; kernel '%s' from %s\n", kernel.name.c_str(),
                 cli.path.c_str());

    CompiledKernel compiled;
    const char* cache = "none";
    if (!cli.remote_socket.empty()) {
        DIOS_CHECK(!cli.strict,
                   "--remote and --strict do not combine: the strict "
                   "path is local by definition");
        daemon::RemoteOptions ropts;
        ropts.socket_path = cli.remote_socket;
        ropts.jitter_seed = cli.seed;
        daemon::RemoteClient client(ropts);
        daemon::CompileRequest req;
        req.kernel_name = kernel.name;
        req.kernel_text = slurp_file(cli.path);
        req.options = cli.compiler;
        req.priority = cli.priority_set ? cli.priority
                                        : service::Priority::kInteractive;
        req.submit_timeout_seconds = cli.submit_timeout_seconds;
        const std::optional<daemon::CompileResponse> resp =
            client.compile(req);
        if (resp && resp->status == daemon::ResponseStatus::kOk) {
            compiled = service::compiled_from_entry(kernel, *resp->entry);
            cache = "remote";
        } else if (resp) {
            std::fprintf(stderr, "dioscc: error: %s\n",
                         resp->error.c_str());
            return resp->failure_class == FailureClass::kUser ? 2 : 1;
        } else {
            // Unreachable daemon: degrade to a local compile. Identical
            // pipeline and options — the artifact bytes do not change,
            // only the process that computed them, so the notice goes
            // to stderr even when commentary is routed to stdout.
            std::fprintf(stderr,
                         "; daemon unreachable after %llu retries: "
                         "compiling locally\n",
                         static_cast<unsigned long long>(
                             client.counters().remote_retries));
            CompileResult result =
                compile_kernel_resilient(kernel, cli.compiler);
            if (!result.ok) {
                std::fprintf(stderr, "dioscc: error: %s\n",
                             result.error.c_str());
                return result.user_error ? 2 : 1;
            }
            if (result.fallback_level > 0) {
                std::fprintf(info,
                             "; DEGRADED to rung %d (%s) after: %s\n",
                             result.fallback_level,
                             fallback_level_name(result.fallback_level),
                             result.compiled->report.error.c_str());
            }
            compiled = std::move(*result.compiled);
            cache = "local-fallback";
        }
    } else if (cli.strict) {
        // The resilient driver arms --fault specs itself; the strict
        // path must arm them here or they would be silently ignored.
        for (const std::string& spec : cli.compiler.fault_specs) {
            faults::arm(faults::parse_spec(spec));
        }
        compiled = compile_kernel(kernel, cli.compiler);
    } else if (!cli.cache_dir.empty()) {
        // Route through the compile service so a warm --cache-dir run is
        // served from the persistent cache instead of re-saturating.
        service::CompileService::Options sopts;
        sopts.jobs = cli.jobs;
        sopts.cache_dir = cli.cache_dir;
        sopts.disk_budget_bytes = cli.cache_disk_budget;
        sopts.negative_ttl_seconds = cli.neg_cache_ttl_seconds;
        sopts.shed_watermark = cli.shed_watermark;
        service::CompileService svc(sopts);
        // A human at the keyboard is the definition of interactive.
        service::SubmitOptions subopts;
        subopts.priority = cli.priority_set
                               ? cli.priority
                               : service::Priority::kInteractive;
        subopts.submit_timeout_seconds = cli.submit_timeout_seconds;
        service::Ticket ticket =
            svc.submit(kernel, cli.compiler, subopts);
        const CompileResult& result = ticket.get();
        cache = service::cache_outcome_json_name(ticket.outcome());
        if (!result.ok) {
            std::fprintf(stderr, "dioscc: error: %s\n",
                         result.error.c_str());
            return result.user_error ? 2 : 1;
        }
        if (result.fallback_level > 0) {
            std::fprintf(info, "; DEGRADED to rung %d (%s) after: %s\n",
                         result.fallback_level,
                         fallback_level_name(result.fallback_level),
                         result.compiled->report.error.c_str());
        }
        std::fprintf(info, "; compile cache: %s\n",
                     service::cache_outcome_name(ticket.outcome()));
        compiled = *result.compiled;
    } else {
        CompileResult result =
            compile_kernel_resilient(kernel, cli.compiler);
        if (!result.ok) {
            std::fprintf(stderr,
                         "dioscc: error: all %zu degradation rungs "
                         "failed: %s\n",
                         result.attempts.size(), result.error.c_str());
            for (const AttemptDiagnostic& a : result.attempts) {
                std::fprintf(stderr, ";   rung %d (%s): %s\n", a.level,
                             fallback_level_name(a.level),
                             a.error.c_str());
            }
            return 1;
        }
        if (result.fallback_level > 0) {
            std::fprintf(info, "; DEGRADED to rung %d (%s) after: %s\n",
                         result.fallback_level,
                         fallback_level_name(result.fallback_level),
                         result.compiled->report.error.c_str());
        }
        compiled = std::move(*result.compiled);
    }

    std::fprintf(info, "; %s\n",
                 report_row(kernel.name, compiled.report).c_str());
    if (cli.json) {
        print_json_object(kernel.name, compiled.report, cache);
        std::printf("\n");
    }
    if (cli.compiler.validate) {
        std::fprintf(info,
                     "; translation validation: %s; random check: %s\n",
                     verdict_name(compiled.report.validation),
                     compiled.report.random_check_passed ? "passed"
                                                         : "FAILED");
    }
    if (compiled.report.machine_validated) {
        std::fprintf(info, "; machine-level validation: %s%s%s\n",
                     verdict_name(compiled.report.machine_validation),
                     compiled.report.machine_witness.empty() ? "" : "; ",
                     compiled.report.machine_witness.c_str());
    }

    if (!cli.dot_path.empty()) {
        // Re-run saturation on the padded spec to obtain the e-graph (the
        // compiled artifact does not retain it), then dump Graphviz.
        CompilerOptions opts = cli.compiler;
        opts.sync();
        EGraph graph;
        graph.add_term(compiled.padded_spec);
        graph.rebuild();
        Runner(opts.limits).run(graph, build_rules(opts.rules));
        std::ofstream out(cli.dot_path);
        out << graph.to_dot();
        std::fprintf(info,
                     "; wrote e-graph (%zu nodes, %zu classes) to %s\n",
                     graph.num_nodes(), graph.num_classes(),
                     cli.dot_path.c_str());
    }

    if (cli.emit_spec) {
        std::printf("\n; lifted specification\n%s\n",
                    Term::to_string(compiled.padded_spec).c_str());
    }
    if (cli.emit_c) {
        std::printf("\n%s", compiled.c_source.c_str());
    }
    if (cli.emit_native) {
        EmitCOptions copts;
        copts.symbol = native_symbol_for(kernel.name);
        copts.vector_width = cli.compiler.target.vector_width;
        copts.memory_words = compiled.layout.memory_words();
        copts.pool = compiled.layout.pool();
        copts.pool_base = compiled.layout.pool_base_words();
        std::printf("\n%s",
                    emit_c_kernel(compiled.machine, copts).c_str());
    }
    if (cli.emit_asm) {
        std::printf("\n; scheduled DSP assembly\n%s",
                    disassemble(compiled.machine,
                                cli.compiler.target.vector_width)
                        .c_str());
    }

    if (cli.run) {
        const scalar::BufferMap inputs = random_inputs(kernel, cli.seed);
        const auto run = compiled.run(inputs, cli.compiler.target);
        const auto naive = scalar::run_baseline(
            kernel, inputs, scalar::LowerMode::kNaiveParametric,
            cli.compiler.target);
        const auto fixed = scalar::run_baseline(
            kernel, inputs, scalar::LowerMode::kNaiveFixed,
            cli.compiler.target);
        const scalar::BufferMap want =
            scalar::run_reference(kernel, inputs);
        // Shape-check before comparing so a mis-sized simulated buffer
        // is reported, not read out of bounds.
        const OutputComparison cmp = compare_outputs(run.outputs, want);
        if (!cmp.shapes_ok()) {
            std::fprintf(stderr,
                         "dioscc: error: simulated outputs do not match "
                         "the kernel manifest: %s\n",
                         cmp.shape_error.c_str());
            return 1;
        }
        std::fprintf(info, "\n; simulated cycles\n");
        std::fprintf(info, ";   naive (parametric) : %llu\n",
                     static_cast<unsigned long long>(naive.result.cycles));
        std::fprintf(info, ";   naive (fixed size) : %llu\n",
                     static_cast<unsigned long long>(fixed.result.cycles));
        std::fprintf(info, ";   diospyros          : %llu (%.2fx over fixed)\n",
                     static_cast<unsigned long long>(run.result.cycles),
                     static_cast<double>(fixed.result.cycles) /
                         static_cast<double>(run.result.cycles));
        std::fprintf(info, ";   max |error| vs reference: %g\n",
                     cmp.max_abs_error);
        if (cmp.max_abs_error > 1e-2f) {
            return 1;
        }
    }
    return 0;
} catch (const UserError& e) {
    std::fprintf(stderr, "dioscc: error: %s\n", e.what());
    return 2;
} catch (const std::exception& e) {
    std::fprintf(stderr, "dioscc: error: %s\n", e.what());
    return 1;
}
