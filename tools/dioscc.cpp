/**
 * @file
 * dioscc — the Diospyros command-line compiler.
 *
 * Compiles a kernel written in the textual input language (see
 * src/scalar/parse.h) through the full pipeline and reports the result:
 *
 *   dioscc <kernel.ksp> [options]
 *
 * Options:
 *   --width N       target vector width (default 4)
 *   --iters N       saturation iteration budget (default 12)
 *   --nodes N       e-graph node limit (default 300000)
 *   --timeout S     saturation wall-clock budget in seconds (default 20)
 *   --no-vector     disable vector rewrite rules (§5.6 ablation)
 *   --ac            enable full associativity/commutativity (§3.3)
 *   --recip         target has a fast reciprocal (§6 extension)
 *   --validate      run exact translation validation
 *   --emit-c        print the generated C intrinsics
 *   --emit-asm      print the scheduled DSP assembly
 *   --emit-spec     print the lifted specification
 *   --emit-dot FILE write the saturated e-graph as Graphviz (debugging)
 *   --json          print the compile report as a JSON object
 *   --run           run on random inputs and compare with the baselines
 *   --seed N        RNG seed for --run (default 1)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>

#include "compiler/driver.h"
#include "egraph/runner.h"
#include "rules/rules.h"
#include "scalar/lower.h"
#include "scalar/parse.h"
#include "support/rng.h"

using namespace diospyros;

namespace {

struct CliOptions {
    std::string path;
    CompilerOptions compiler;
    bool emit_c = false;
    bool emit_asm = false;
    bool emit_spec = false;
    bool json = false;
    bool run = false;
    std::string dot_path;
    std::uint64_t seed = 1;
};

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <kernel.ksp> [--width N] [--iters N] "
                 "[--nodes N] [--timeout S] [--no-vector] [--ac] "
                 "[--recip] [--validate] [--emit-c] [--emit-asm] "
                 "[--emit-spec] [--emit-dot FILE] [--json] [--run] "
                 "[--seed N]\n",
                 argv0);
    std::exit(2);
}

CliOptions
parse_cli(int argc, char** argv)
{
    CliOptions cli;
    cli.compiler.limits = RunnerLimits{.node_limit = 300'000,
                                       .iter_limit = 12,
                                       .time_limit_seconds = 20.0};
    auto int_arg = [&](int& i) {
        if (i + 1 >= argc) {
            usage(argv[0]);
        }
        return std::atoll(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--width") {
            cli.compiler.target.vector_width =
                static_cast<int>(int_arg(i));
        } else if (arg == "--iters") {
            cli.compiler.limits.iter_limit = static_cast<int>(int_arg(i));
        } else if (arg == "--nodes") {
            cli.compiler.limits.node_limit =
                static_cast<std::size_t>(int_arg(i));
        } else if (arg == "--timeout") {
            cli.compiler.limits.time_limit_seconds =
                static_cast<double>(int_arg(i));
        } else if (arg == "--no-vector") {
            cli.compiler.rules.enable_vector_rules = false;
        } else if (arg == "--ac") {
            cli.compiler.rules.full_ac = true;
        } else if (arg == "--recip") {
            cli.compiler.target.has_reciprocal = true;
        } else if (arg == "--validate") {
            cli.compiler.validate = true;
            cli.compiler.random_check = true;
        } else if (arg == "--emit-c") {
            cli.emit_c = true;
        } else if (arg == "--emit-asm") {
            cli.emit_asm = true;
        } else if (arg == "--emit-spec") {
            cli.emit_spec = true;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--emit-dot") {
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            cli.dot_path = argv[++i];
        } else if (arg == "--run") {
            cli.run = true;
        } else if (arg == "--seed") {
            cli.seed = static_cast<std::uint64_t>(int_arg(i));
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else if (cli.path.empty()) {
            cli.path = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (cli.path.empty()) {
        usage(argv[0]);
    }
    return cli;
}

scalar::BufferMap
random_inputs(const scalar::Kernel& kernel, std::uint64_t seed)
{
    Rng rng(seed);
    scalar::BufferMap out;
    for (const auto& decl :
         kernel.arrays_with_role(scalar::ArrayRole::kInput)) {
        std::vector<float> data(static_cast<std::size_t>(
            scalar::array_length(kernel, decl)));
        for (float& v : data) {
            v = rng.uniform_float(-2.0f, 2.0f);
        }
        out.emplace(decl.name.str(), std::move(data));
    }
    return out;
}

}  // namespace

int
main(int argc, char** argv)
try {
    CliOptions cli = parse_cli(argc, argv);
    const scalar::Kernel kernel = scalar::parse_kernel_file(cli.path);

    std::printf("; kernel '%s' from %s\n", kernel.name.c_str(),
                cli.path.c_str());
    const CompiledKernel compiled = compile_kernel(kernel, cli.compiler);
    std::printf("; %s\n", report_row(kernel.name, compiled.report).c_str());
    if (cli.json) {
        const CompileReport& r = compiled.report;
        std::printf(
            "{\"kernel\":\"%s\",\"total_seconds\":%.6f,"
            "\"saturation_seconds\":%.6f,\"egraph_nodes\":%zu,"
            "\"egraph_classes\":%zu,\"iterations\":%zu,"
            "\"stop\":\"%s\",\"extracted_cost\":%.2f,"
            "\"spec_elements\":%zu,\"memory_proxy_bytes\":%zu,"
            "\"lvn_removed\":%zu}\n",
            kernel.name.c_str(), r.total_seconds, r.saturation_seconds,
            r.egraph_nodes, r.egraph_classes, r.runner_iterations,
            stop_reason_name(r.stop_reason), r.extracted_cost,
            r.spec_elements, r.memory_proxy_bytes,
            r.lvn.value_numbered + r.lvn.dead_removed);
    }
    if (cli.compiler.validate) {
        std::printf("; translation validation: %s; random check: %s\n",
                    verdict_name(compiled.report.validation),
                    compiled.report.random_check_passed ? "passed"
                                                        : "FAILED");
    }

    if (!cli.dot_path.empty()) {
        // Re-run saturation on the padded spec to obtain the e-graph (the
        // compiled artifact does not retain it), then dump Graphviz.
        CompilerOptions opts = cli.compiler;
        opts.sync();
        EGraph graph;
        graph.add_term(compiled.padded_spec);
        graph.rebuild();
        Runner(opts.limits).run(graph, build_rules(opts.rules));
        std::ofstream out(cli.dot_path);
        out << graph.to_dot();
        std::printf("; wrote e-graph (%zu nodes, %zu classes) to %s\n",
                    graph.num_nodes(), graph.num_classes(),
                    cli.dot_path.c_str());
    }

    if (cli.emit_spec) {
        std::printf("\n; lifted specification\n%s\n",
                    Term::to_string(compiled.padded_spec).c_str());
    }
    if (cli.emit_c) {
        std::printf("\n%s", compiled.c_source.c_str());
    }
    if (cli.emit_asm) {
        std::printf("\n; scheduled DSP assembly\n%s",
                    disassemble(compiled.machine,
                                cli.compiler.target.vector_width)
                        .c_str());
    }

    if (cli.run) {
        const scalar::BufferMap inputs = random_inputs(kernel, cli.seed);
        const auto run = compiled.run(inputs, cli.compiler.target);
        const auto naive = scalar::run_baseline(
            kernel, inputs, scalar::LowerMode::kNaiveParametric,
            cli.compiler.target);
        const auto fixed = scalar::run_baseline(
            kernel, inputs, scalar::LowerMode::kNaiveFixed,
            cli.compiler.target);
        const scalar::BufferMap want =
            scalar::run_reference(kernel, inputs);
        float max_err = 0.0f;
        for (const auto& [name, w] : want) {
            const auto& g = run.outputs.at(name);
            for (std::size_t i = 0; i < w.size(); ++i) {
                max_err = std::max(max_err, std::abs(w[i] - g[i]));
            }
        }
        std::printf("\n; simulated cycles\n");
        std::printf(";   naive (parametric) : %llu\n",
                    static_cast<unsigned long long>(naive.result.cycles));
        std::printf(";   naive (fixed size) : %llu\n",
                    static_cast<unsigned long long>(fixed.result.cycles));
        std::printf(";   diospyros          : %llu (%.2fx over fixed)\n",
                    static_cast<unsigned long long>(run.result.cycles),
                    static_cast<double>(fixed.result.cycles) /
                        static_cast<double>(run.result.cycles));
        std::printf(";   max |error| vs reference: %g\n", max_err);
        if (max_err > 1e-2f) {
            return 1;
        }
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "dioscc: error: %s\n", e.what());
    return 1;
}
