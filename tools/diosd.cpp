/**
 * @file
 * diosd: the standing compile daemon (DESIGN.md §5j). Wraps a
 * CompileService behind the Unix-domain-socket frame protocol so many
 * dioscc processes share one warm cache and one admission-controlled
 * worker pool.
 *
 *   diosd --socket PATH [--jobs N] [--cache-dir D]
 *         [--cache-disk-budget BYTES] [--queue-capacity N]
 *         [--shed-watermark N] [--neg-cache-ttl-s S]
 *         [--read-deadline-s S] [--drain-deadline-s S] [--json]
 *
 * SIGTERM/SIGINT trigger a graceful drain: queued work is finished
 * (kFinish) and a watchdog escalates to kShed at the drain deadline, so
 * termination is bounded. The final metrics document is printed on exit
 * (a JSON object with --json, a commentary line otherwise).
 *
 * Exit codes: 0 clean shutdown, 2 bad flags or a live daemon already
 * owns the socket.
 */
#include <csignal>
#include <cstdio>
#include <string>

#include <atomic>
#include <chrono>
#include <thread>

#include <unistd.h>

#include "daemon/daemon.h"
#include "support/error.h"
#include "support/numeric.h"

using namespace diospyros;

namespace {

std::atomic<bool> g_stop{false};

void
handle_stop(int)
{
    g_stop.store(true);
}

void
install_stop_handlers()
{
    struct sigaction sa = {};
    sa.sa_handler = handle_stop;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--jobs N] [--cache-dir D]\n"
        "          [--cache-disk-budget BYTES] [--queue-capacity N]\n"
        "          [--shed-watermark N] [--neg-cache-ttl-s S]\n"
        "          [--read-deadline-s S] [--drain-deadline-s S] [--json]\n",
        argv0);
    std::exit(2);
}

}  // namespace

int
main(int argc, char** argv)
try {
    daemon::DaemonOptions opts;
    bool json = false;
    auto next_arg = [&](int& i) -> std::string {
        if (i + 1 >= argc) {
            usage(argv[0]);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            opts.socket_path = next_arg(i);
        } else if (arg == "--jobs") {
            opts.service.jobs = static_cast<int>(
                require_positive_integer(arg, next_arg(i)));
        } else if (arg == "--cache-dir") {
            opts.service.cache_dir = next_arg(i);
        } else if (arg == "--cache-disk-budget") {
            opts.service.disk_budget_bytes = static_cast<std::uintmax_t>(
                require_nonnegative_integer(arg, next_arg(i)));
        } else if (arg == "--queue-capacity") {
            opts.service.queue_capacity = static_cast<std::size_t>(
                require_positive_integer(arg, next_arg(i)));
        } else if (arg == "--shed-watermark") {
            opts.service.shed_watermark = static_cast<std::size_t>(
                require_nonnegative_integer(arg, next_arg(i)));
        } else if (arg == "--neg-cache-ttl-s") {
            opts.service.negative_ttl_seconds =
                require_nonnegative_number(arg, next_arg(i));
        } else if (arg == "--read-deadline-s") {
            opts.read_deadline_seconds =
                require_positive_number(arg, next_arg(i));
        } else if (arg == "--drain-deadline-s") {
            opts.drain_deadline_seconds =
                require_nonnegative_number(arg, next_arg(i));
        } else if (arg == "--json") {
            json = true;
        } else {
            usage(argv[0]);
        }
    }
    if (opts.socket_path.empty()) {
        usage(argv[0]);
    }

    daemon::Daemon daemon(opts);
    daemon.start();
    install_stop_handlers();
    std::fprintf(stderr, "; diosd: serving on %s (pid %d, %d jobs)\n",
                 opts.socket_path.c_str(), ::getpid(), opts.service.jobs);
    while (!g_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "; diosd: signal received, draining\n");
    daemon.shutdown(service::DrainMode::kFinish);
    if (json) {
        std::printf("%s\n", daemon.status_json().c_str());
    } else {
        std::fprintf(stderr, "; diosd: final metrics: %s\n",
                     daemon.status_json().c_str());
    }
    return 0;
} catch (const UserError& e) {
    std::fprintf(stderr, "diosd: error: %s\n", e.what());
    return 2;
} catch (const std::exception& e) {
    std::fprintf(stderr, "diosd: error: %s\n", e.what());
    return 1;
}
